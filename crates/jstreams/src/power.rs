//! PowerList-specific stream pieces: decomposition choice, the identity
//! and map collectors of Section IV, and checked collection back into a
//! [`PowerList`].

use crate::characteristics::Characteristics;
use crate::collector::Collector;
use crate::placement::{self, OutputBuffer, PlacementBuf, PlacementSpec, Window, WindowRule};
use crate::spliterator::{ItemSource, LeafAccess, Spliterator};
use crate::stream::{stream_support, Stream};
use crate::tie::TieSpliterator;
use crate::zip::ZipSpliterator;
use powerlist::{is_power_of_two, Error, PowerArray, PowerList};
use std::sync::Arc;

/// Which deconstruction operator drives the splitting phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decomposition {
    /// Halving — `p | q`.
    Tie,
    /// Parity — `p ♮ q`.
    Zip,
}

/// A spliterator that decomposes a PowerList with either operator;
/// the common source type for [`power_stream`].
pub enum PowerSpliterator<T> {
    /// Tie-splitting source.
    Tie(TieSpliterator<T>),
    /// Zip-splitting source.
    Zip(ZipSpliterator<T>),
}

impl<T> PowerSpliterator<T> {
    /// Builds the spliterator for `list` under the chosen decomposition.
    pub fn over(list: PowerList<T>, decomposition: Decomposition) -> Self {
        match decomposition {
            Decomposition::Tie => PowerSpliterator::Tie(TieSpliterator::over(list)),
            Decomposition::Zip => PowerSpliterator::Zip(ZipSpliterator::over(list)),
        }
    }
}

impl<T: Clone> ItemSource<T> for PowerSpliterator<T> {
    fn try_advance(&mut self, action: &mut dyn FnMut(T)) -> bool {
        match self {
            PowerSpliterator::Tie(s) => s.try_advance(action),
            PowerSpliterator::Zip(s) => s.try_advance(action),
        }
    }

    fn for_each_remaining(&mut self, action: &mut dyn FnMut(T)) {
        match self {
            PowerSpliterator::Tie(s) => s.for_each_remaining(action),
            PowerSpliterator::Zip(s) => s.for_each_remaining(action),
        }
    }

    fn estimate_size(&self) -> usize {
        match self {
            PowerSpliterator::Tie(s) => s.estimate_size(),
            PowerSpliterator::Zip(s) => s.estimate_size(),
        }
    }
}

impl<T> LeafAccess<T> for PowerSpliterator<T> {
    fn try_as_slice(&self) -> Option<&[T]> {
        match self {
            PowerSpliterator::Tie(s) => s.try_as_slice(),
            PowerSpliterator::Zip(s) => s.try_as_slice(),
        }
    }

    fn try_as_strided(&self) -> Option<(&[T], usize)> {
        match self {
            PowerSpliterator::Tie(s) => s.try_as_strided(),
            PowerSpliterator::Zip(s) => s.try_as_strided(),
        }
    }

    fn mark_drained(&mut self) {
        match self {
            PowerSpliterator::Tie(s) => s.mark_drained(),
            PowerSpliterator::Zip(s) => s.mark_drained(),
        }
    }
}

impl<T: Clone + Send + Sync> Spliterator<T> for PowerSpliterator<T> {
    fn try_split(&mut self) -> Option<Self> {
        match self {
            PowerSpliterator::Tie(s) => s.try_split().map(PowerSpliterator::Tie),
            PowerSpliterator::Zip(s) => s.try_split().map(PowerSpliterator::Zip),
        }
    }

    fn characteristics(&self) -> Characteristics {
        match self {
            PowerSpliterator::Tie(s) => s.characteristics(),
            PowerSpliterator::Zip(s) => s.characteristics(),
        }
    }

    fn prefix_splits(&self) -> bool {
        match self {
            PowerSpliterator::Tie(s) => s.prefix_splits(),
            PowerSpliterator::Zip(s) => s.prefix_splits(),
        }
    }

    fn encounter_rank(&self) -> Option<(usize, usize)> {
        match self {
            PowerSpliterator::Tie(s) => s.encounter_rank(),
            PowerSpliterator::Zip(s) => s.encounter_rank(),
        }
    }
}

/// Creates a (parallel by default) stream over a PowerList, decomposed by
/// the chosen operator — the adaptation's entry point.
pub fn power_stream<T>(
    list: PowerList<T>,
    decomposition: Decomposition,
) -> Stream<T, PowerSpliterator<T>>
where
    T: Clone + Send + Sync + 'static,
{
    stream_support(PowerSpliterator::over(list, decomposition), true)
}

/// The identity PowerList collector of Section IV.B's first example:
/// supplier `PowerList::new`, accumulator `add`, combiner
/// `tieAll`/`zipAll` matching the decomposition. Collecting a stream
/// decomposed by `d` with `PowerListCollector::new(d)` reproduces the
/// source exactly — "meant to verify the correct decomposition and
/// combining".
pub struct PowerListCollector {
    decomposition: Decomposition,
}

impl PowerListCollector {
    /// Identity collector recombining with the given operator.
    pub fn new(decomposition: Decomposition) -> Self {
        PowerListCollector { decomposition }
    }
}

/// [`OutputBuffer`] for [`PowerListCollector`]: identical to the plain
/// vector destination except that `finish` promotes to a
/// [`PowerArray`]. The window rule (chosen by the collector) carries
/// the tie/zip recomposition: combine itself is a true no-op.
struct PowerPlacement<T> {
    buf: PlacementBuf<T>,
}

impl<T: Clone + Send + 'static> OutputBuffer<T, PowerArray<T>> for PowerPlacement<T> {
    fn fill_run(&self, w: Window, items: &[T], step: usize) -> u64 {
        let mut writer = self.buf.writer(w);
        writer.push_run(items, step);
        writer.count()
    }

    fn fill_with(&self, w: Window, drive: &mut dyn FnMut(&mut dyn FnMut(T))) -> u64 {
        self.buf.write(w, drive)
    }

    fn combine(&self, _parent: Window, _left_slots: usize) {}

    fn finish(&self) -> PowerArray<T> {
        PowerArray::from(self.buf.finish_vec())
    }
}

impl<T: Clone + Send + 'static> Collector<T> for PowerListCollector {
    type Acc = PowerArray<T>;
    type Out = PowerArray<T>;

    fn supplier(&self) -> PowerArray<T> {
        PowerArray::new()
    }

    fn accumulate(&self, acc: &mut PowerArray<T>, item: T) {
        acc.push(item);
    }

    fn combine(&self, mut left: PowerArray<T>, right: PowerArray<T>) -> PowerArray<T> {
        match self.decomposition {
            Decomposition::Tie => left.tie_all(right),
            Decomposition::Zip => left.zip_all(right),
        }
        left
    }

    fn finish(&self, acc: PowerArray<T>) -> PowerArray<T> {
        acc
    }

    fn leaf_slice(&self, items: &[T]) -> Option<PowerArray<T>> {
        Some(PowerArray::from(items.to_vec()))
    }

    fn leaf_strided(&self, items: &[T], step: usize) -> Option<PowerArray<T>> {
        Some(PowerArray::from(
            items.iter().step_by(step).cloned().collect::<Vec<T>>(),
        ))
    }

    // The window rule mirrors the *combine algebra*, not the split
    // geometry: `tie_all` concatenates, `zip_all` interleaves. This is
    // what keeps placement identical to splice even for mismatched
    // decompositions (zip-split source recombined with tie, and vice
    // versa).
    fn placement_spec(&self) -> Option<PlacementSpec> {
        Some(PlacementSpec {
            rule: match self.decomposition {
                Decomposition::Tie => WindowRule::Concat,
                Decomposition::Zip => WindowRule::Interleave,
            },
            gap: 0,
            unit: true,
        })
    }

    fn try_reserve(&self, slots: usize) -> Option<Arc<dyn OutputBuffer<T, PowerArray<T>>>> {
        placement::reserve(PowerPlacement {
            buf: PlacementBuf::new(slots),
        })
    }
}

/// The map-as-collect of Section IV.B: "if instead of providing as the
/// accumulator a simple add function, we give a function that first
/// applies an operation and then adds the value, a map definition is
/// obtained".
pub struct PowerMapCollector<F> {
    decomposition: Decomposition,
    f: Arc<F>,
}

impl<F> PowerMapCollector<F> {
    /// Map collector applying `f` at accumulation time.
    pub fn new(decomposition: Decomposition, f: F) -> Self {
        PowerMapCollector {
            decomposition,
            f: Arc::new(f),
        }
    }
}

impl<T, U, F> Collector<T> for PowerMapCollector<F>
where
    T: Clone + Send,
    U: Send,
    F: Fn(T) -> U + Send + Sync,
{
    type Acc = PowerArray<U>;
    type Out = PowerArray<U>;

    fn supplier(&self) -> PowerArray<U> {
        PowerArray::new()
    }

    fn accumulate(&self, acc: &mut PowerArray<U>, item: T) {
        acc.push((self.f)(item));
    }

    fn combine(&self, mut left: PowerArray<U>, right: PowerArray<U>) -> PowerArray<U> {
        match self.decomposition {
            Decomposition::Tie => left.tie_all(right),
            Decomposition::Zip => left.zip_all(right),
        }
        left
    }

    fn finish(&self, acc: PowerArray<U>) -> PowerArray<U> {
        acc
    }

    fn leaf_slice(&self, items: &[T]) -> Option<PowerArray<U>> {
        Some(PowerArray::from(
            items
                .iter()
                .map(|x| (self.f)(x.clone()))
                .collect::<Vec<U>>(),
        ))
    }

    fn leaf_strided(&self, items: &[T], step: usize) -> Option<PowerArray<U>> {
        Some(PowerArray::from(
            items
                .iter()
                .step_by(step)
                .map(|x| (self.f)(x.clone()))
                .collect::<Vec<U>>(),
        ))
    }
}

/// Runs the identity collect on a stream and promotes the result to a
/// strict [`PowerList`], after verifying the `POWER2` contract the paper
/// checks before executing PowerList functions.
pub fn collect_powerlist<T, S>(
    stream: Stream<T, S>,
    decomposition: Decomposition,
) -> Result<PowerList<T>, Error>
where
    T: Clone + Send + Sync + 'static,
    S: Spliterator<T> + 'static,
{
    let n = stream.estimate_size();
    if !stream.characteristics().contains(Characteristics::POWER2) || !is_power_of_two(n) {
        return Err(if n == 0 {
            Error::Empty
        } else {
            Error::NotPowerOfTwo(n)
        });
    }
    stream
        .collect(PowerListCollector::new(decomposition))
        .into_powerlist()
}

/// Fully fallible PowerList collect: shape violations (`POWER2`
/// contract, non-power-of-two promotion) surface as
/// [`ExecError::Shape`](crate::ExecError::Shape) and execution faults
/// (contained panics, cancellation, deadlines) as the other
/// [`ExecError`](crate::ExecError) variants — nothing panics.
pub fn try_collect_powerlist<T, S>(
    stream: Stream<T, S>,
    decomposition: Decomposition,
    cfg: &crate::ExecConfig,
) -> Result<PowerList<T>, crate::ExecError>
where
    T: Clone + Send + Sync + 'static,
    S: Spliterator<T> + 'static,
{
    let n = stream.estimate_size();
    if !stream.characteristics().contains(Characteristics::POWER2) || !is_power_of_two(n) {
        return Err(crate::ExecError::Shape(if n == 0 {
            Error::Empty
        } else {
            Error::NotPowerOfTwo(n)
        }));
    }
    let out = stream.try_collect(PowerListCollector::new(decomposition), cfg)?;
    out.into_powerlist().map_err(crate::ExecError::Shape)
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerlist::tabulate;

    fn list(n: usize) -> PowerList<i64> {
        tabulate(n, |i| i as i64 * 3 - 7).unwrap()
    }

    #[test]
    fn identity_collect_zip_reproduces_source() {
        // The paper's verification example: ZipSpliterator + zipAll.
        let p = list(64);
        let s = power_stream(p.clone(), Decomposition::Zip).with_leaf_size(1);
        let out = collect_powerlist(s, Decomposition::Zip).unwrap();
        assert_eq!(out, p);
    }

    #[test]
    fn identity_collect_tie_reproduces_source() {
        let p = list(64);
        let s = power_stream(p.clone(), Decomposition::Tie).with_leaf_size(4);
        let out = collect_powerlist(s, Decomposition::Tie).unwrap();
        assert_eq!(out, p);
    }

    #[test]
    fn identity_collect_sequential_also_works() {
        let p = list(32);
        let s = power_stream(p.clone(), Decomposition::Zip).sequential();
        let out = collect_powerlist(s, Decomposition::Zip).unwrap();
        assert_eq!(out, p);
    }

    #[test]
    fn mismatched_decomposition_scrambles() {
        // Splitting by zip but recombining by tie yields inv (bit
        // reversal) when split to singletons — the algebraic reason the
        // combiner must match the spliterator.
        let p = tabulate(8, |i| i).unwrap();
        let s = power_stream(p.clone(), Decomposition::Zip).with_leaf_size(1);
        let out = s.collect(PowerListCollector::new(Decomposition::Tie));
        let expected = powerlist::perm::inv_indexed(&p);
        assert_eq!(out.into_powerlist().unwrap(), expected);
    }

    #[test]
    fn map_collector_applies_function() {
        let p = list(16);
        let s = power_stream(p.clone(), Decomposition::Zip).with_leaf_size(2);
        let out = s.collect(PowerMapCollector::new(Decomposition::Zip, |x: i64| x * x));
        let expected: Vec<i64> = p.iter().map(|x| x * x).collect();
        assert_eq!(out.into_vec(), expected);
    }

    #[test]
    fn filter_breaks_power2_contract() {
        let p = list(16);
        let s = power_stream(p, Decomposition::Tie).filter(|x| *x > 0);
        let err = collect_powerlist(s, Decomposition::Tie).unwrap_err();
        assert!(matches!(err, Error::NotPowerOfTwo(_)));
    }

    #[test]
    fn map_keeps_power2_contract() {
        let p = list(16);
        let s = power_stream(p, Decomposition::Zip).map(|x| x + 1);
        let out = collect_powerlist(s, Decomposition::Zip).unwrap();
        assert_eq!(out.len(), 16);
        assert_eq!(out[0], -6);
    }

    #[test]
    fn various_leaf_sizes_agree() {
        let p = list(128);
        for leaf in [1usize, 2, 8, 32, 128] {
            let s = power_stream(p.clone(), Decomposition::Zip).with_leaf_size(leaf);
            let out = collect_powerlist(s, Decomposition::Zip).unwrap();
            assert_eq!(out, p, "leaf={leaf}");
        }
    }

    #[test]
    fn singleton_powerlist_roundtrip() {
        let p = PowerList::singleton(5i64);
        let s = power_stream(p.clone(), Decomposition::Zip);
        assert_eq!(collect_powerlist(s, Decomposition::Zip).unwrap(), p);
    }

    #[test]
    fn try_collect_powerlist_routes_shape_and_exec_errors() {
        use crate::{ExecConfig, ExecError};
        // Happy path matches the infallible entry point.
        let p = list(32);
        let s = power_stream(p.clone(), Decomposition::Zip).with_leaf_size(2);
        let cfg = ExecConfig::par().with_leaf_size(2);
        let out = try_collect_powerlist(s, Decomposition::Zip, &cfg).unwrap();
        assert_eq!(out, p);
        // Shape violation: filter drops POWER2.
        let s = power_stream(list(16), Decomposition::Tie).filter(|x| *x > 0);
        let err = try_collect_powerlist(s, Decomposition::Tie, &cfg).unwrap_err();
        assert!(matches!(err, ExecError::Shape(Error::NotPowerOfTwo(_))));
        // Execution fault: a pre-cancelled token.
        let token = forkjoin::CancelToken::new();
        token.cancel(forkjoin::CancelReason::User);
        let s = power_stream(list(16), Decomposition::Zip);
        let err = try_collect_powerlist(
            s,
            Decomposition::Zip,
            &ExecConfig::seq().with_cancel_token(token),
        )
        .unwrap_err();
        assert!(matches!(err, ExecError::Cancelled));
    }
}
