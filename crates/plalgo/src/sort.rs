//! Sorting networks over PowerLists: Batcher's odd-even merge sort and
//! bitonic sort — two of the catalogue functions the paper lists
//! (Section III: "Fast Fourier Transform, Batcher sort, Bitonic sort,
//! Prefix sum, Gray codes, etc.").
//!
//! Both follow the PowerList divide-and-conquer shape: sort the tie
//! halves recursively, then merge; the merges themselves recurse over
//! **zip** deconstructions — like the FFT, these algorithms need both
//! operators.

use forkjoin::{join, ForkJoinPool};
use powerlist::PowerList;
use std::sync::Arc;

/// Batcher's odd-even merge of two sorted runs of equal power-of-two
/// length:
///
/// ```text
/// oem(a, b) | len 1     = [min(a,b), max(a,b)]
/// oem(a, b)             = cleanup(oem(evens a, evens b) ♮ oem(odds a, odds b))
/// ```
///
/// where `cleanup` compare-exchanges each adjacent pair `(2i+1, 2i+2)`.
pub fn odd_even_merge<T: Ord + Clone>(a: &[T], b: &[T]) -> Vec<T> {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    if n == 1 {
        let (x, y) = (a[0].clone(), b[0].clone());
        return if x <= y { vec![x, y] } else { vec![y, x] };
    }
    let evens = |s: &[T]| s.iter().step_by(2).cloned().collect::<Vec<T>>();
    let odds = |s: &[T]| s.iter().skip(1).step_by(2).cloned().collect::<Vec<T>>();
    let v = odd_even_merge(&evens(a), &evens(b));
    let w = odd_even_merge(&odds(a), &odds(b));
    // zip v and w, then the cleanup comparator stage.
    let mut out = Vec::with_capacity(2 * n);
    for i in 0..n {
        out.push(v[i].clone());
        out.push(w[i].clone());
    }
    for i in (1..2 * n - 1).step_by(2) {
        if out[i] > out[i + 1] {
            out.swap(i, i + 1);
        }
    }
    out
}

/// Batcher's odd-even merge sort (sequential structural recursion).
pub fn batcher_sort<T: Ord + Clone>(input: &PowerList<T>) -> PowerList<T> {
    fn go<T: Ord + Clone>(v: &[T]) -> Vec<T> {
        if v.len() == 1 {
            return v.to_vec();
        }
        let mid = v.len() / 2;
        let l = go(&v[..mid]);
        let r = go(&v[mid..]);
        odd_even_merge(&l, &r)
    }
    PowerList::from_vec(go(input.as_slice())).expect("sorting preserves length")
}

/// Parallel Batcher sort: the two tie halves sort in parallel on the
/// pool; merges run sequentially (they are `O(n log n)` work at `O(n)`
/// span and dominate only near the root).
pub fn batcher_sort_par<T>(pool: &ForkJoinPool, input: &PowerList<T>, grain: usize) -> PowerList<T>
where
    T: Ord + Clone + Send + Sync + 'static,
{
    fn go<T: Ord + Clone + Send + Sync + 'static>(
        v: Arc<Vec<T>>,
        lo: usize,
        hi: usize,
        grain: usize,
    ) -> Vec<T> {
        if hi - lo <= grain.max(1) {
            let mut s = v[lo..hi].to_vec();
            s.sort();
            return s;
        }
        let mid = lo + (hi - lo) / 2;
        let v2 = Arc::clone(&v);
        let (l, r) = join(
            move || go(v, lo, mid, grain),
            move || go(v2, mid, hi, grain),
        );
        odd_even_merge(&l, &r)
    }
    let n = input.len();
    let data = Arc::new(input.clone().into_vec());
    let out = pool.install(move || go(data, 0, n, grain));
    PowerList::from_vec(out).expect("sorting preserves length")
}

/// Bitonic merge: input is a bitonic sequence; `dir` true = ascending.
fn bitonic_merge<T: Ord + Clone>(v: &mut [T], dir: bool) {
    let n = v.len();
    if n <= 1 {
        return;
    }
    let half = n / 2;
    for i in 0..half {
        if (v[i] > v[i + half]) == dir {
            v.swap(i, i + half);
        }
    }
    bitonic_merge(&mut v[..half], dir);
    let (_, rest) = v.split_at_mut(half);
    bitonic_merge(rest, dir);
}

fn bitonic_rec<T: Ord + Clone>(v: &mut [T], dir: bool) {
    let n = v.len();
    if n <= 1 {
        return;
    }
    let half = n / 2;
    bitonic_rec(&mut v[..half], true);
    {
        let (_, rest) = v.split_at_mut(half);
        bitonic_rec(rest, false);
    }
    bitonic_merge(v, dir);
}

/// Bitonic sort (sequential): sort halves in opposite directions, then
/// bitonic-merge.
pub fn bitonic_sort<T: Ord + Clone>(input: &PowerList<T>) -> PowerList<T> {
    let mut v = input.clone().into_vec();
    bitonic_rec(&mut v, true);
    PowerList::from_vec(v).expect("sorting preserves length")
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerlist::tabulate;

    fn scrambled(n: usize) -> PowerList<i64> {
        tabulate(n, |i| ((i as i64 * 1103515245 + 12345) % 1000) - 500).unwrap()
    }

    fn is_sorted<T: Ord>(v: &[T]) -> bool {
        v.windows(2).all(|w| w[0] <= w[1])
    }

    #[test]
    fn odd_even_merge_merges() {
        let a = vec![1, 4, 7, 9];
        let b = vec![2, 3, 8, 10];
        let m = odd_even_merge(&a, &b);
        assert_eq!(m, vec![1, 2, 3, 4, 7, 8, 9, 10]);
    }

    #[test]
    fn odd_even_merge_singletons() {
        assert_eq!(odd_even_merge(&[5], &[2]), vec![2, 5]);
        assert_eq!(odd_even_merge(&[2], &[5]), vec![2, 5]);
        assert_eq!(odd_even_merge(&[3], &[3]), vec![3, 3]);
    }

    #[test]
    fn batcher_sorts() {
        for k in 0..10 {
            let p = scrambled(1 << k);
            let sorted = batcher_sort(&p);
            assert!(is_sorted(sorted.as_slice()), "k={k}");
            let mut expected = p.clone().into_vec();
            expected.sort();
            assert_eq!(sorted.into_vec(), expected, "k={k}");
        }
    }

    #[test]
    fn batcher_par_matches_seq() {
        let pool = ForkJoinPool::new(3);
        let p = scrambled(1 << 10);
        let seq = batcher_sort(&p);
        for grain in [1usize, 16, 256] {
            assert_eq!(batcher_sort_par(&pool, &p, grain), seq, "grain={grain}");
        }
    }

    #[test]
    fn bitonic_sorts() {
        for k in 0..10 {
            let p = scrambled(1 << k);
            let sorted = bitonic_sort(&p);
            assert!(is_sorted(sorted.as_slice()), "k={k}");
            let mut expected = p.clone().into_vec();
            expected.sort();
            assert_eq!(sorted.into_vec(), expected, "k={k}");
        }
    }

    #[test]
    fn sorts_handle_duplicates_and_sorted_input() {
        let dup = PowerList::from_vec(vec![3i64, 3, 3, 3, 1, 1, 9, 9]).unwrap();
        assert_eq!(batcher_sort(&dup).as_slice(), &[1, 1, 3, 3, 3, 3, 9, 9]);
        let asc = tabulate(16, |i| i as i64).unwrap();
        assert_eq!(batcher_sort(&asc), asc);
        assert_eq!(bitonic_sort(&asc), asc);
        let desc = tabulate(16, |i| 15 - i as i64).unwrap();
        assert_eq!(batcher_sort(&desc), asc);
        assert_eq!(bitonic_sort(&desc), asc);
    }

    #[test]
    fn singleton_sorts() {
        let s = PowerList::singleton(42i64);
        assert_eq!(batcher_sort(&s), s);
        assert_eq!(bitonic_sort(&s), s);
    }
}
