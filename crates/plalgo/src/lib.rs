//! # plalgo — the PowerList algorithm catalogue
//!
//! All the functions the paper names as expressible in the PowerList
//! framework (Sections II–III), each implemented through the
//! repository's execution routes and cross-validated:
//!
//! | Function | Module | Routes |
//! |---|---|---|
//! | `map` / `reduce` (Eq. 1) | [`mapred`] | JPLF (tie & zip), streams, spec |
//! | polynomial evaluation (Eq. 4) | [`poly`] | JPLF, streams (hooked spliterator + shared state), Horner oracle |
//! | FFT (Eq. 3) | [`fft`] | recursion, JPLF, streams, naive-DFT oracle |
//! | prefix sums (Ladner–Fischer) | [`scan`] | recursion, fork-join tiles, fold oracle |
//! | Batcher & bitonic sort | [`sort`] | recursion, fork-join, `sort()` oracle |
//! | Gray codes | [`gray`] | recursion, closed-form oracle |
//! | Eq. 5 tie-descent functions | [`descent`] | JPLF (all executors) |
//! | `inv`, `rev` | re-exported from [`powerlist::perm`] | index & structural |

#![warn(missing_docs)]

pub mod complex;
pub mod descent;
pub mod fft;
pub mod gray;
pub mod mapred;
pub mod mss;
pub mod perm;
pub mod poly;
pub mod polymul;
pub mod scan;
pub mod sort;

pub use complex::Complex;
pub use descent::{haar_like, TieDescentFunction};
pub use fft::{dft_naive, fft_real, fft_seq, fft_stream, ifft, FftCollector, FftFunction};
pub use gray::{gray_closed, gray_decode, gray_structural};
pub use mapred::{map_stream, reduce_stream, MapFunction, ReduceFunction};
pub use mss::{mss, mss_kadane, mss_spec, mss_stream, MssCollector, MssFunction, MssState};
pub use perm::{inv_via, InvFunctionTyped};
pub use poly::{
    eval_par_stream, eval_par_stream_with, eval_seq_stream, eval_tupled_stream, horner,
    poly_spliterator, PolynomialCollector, TupledVp, TupledVpCollector, VpFunction,
};
pub use polymul::{convolve, poly_mul_fft, poly_mul_naive};
pub use scan::{scan_exclusive, scan_par, scan_seq, scan_spec};
pub use sort::{batcher_sort, batcher_sort_par, bitonic_sort, odd_even_merge};
