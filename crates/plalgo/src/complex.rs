//! Complex arithmetic for the FFT.
//!
//! A self-contained `f64` complex type (the dependency policy of this
//! repository keeps numerics in-repo; see DESIGN.md §6). Only the
//! operations the FFT catalogue needs are provided, all `#[inline]`.

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A complex number over `f64`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Builds `re + im·i`.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Complex {
        Complex { re, im }
    }

    /// A real number as a complex one.
    #[inline]
    pub const fn from_re(re: f64) -> Complex {
        Complex { re, im: 0.0 }
    }

    /// `e^{iθ}` — the point at angle `theta` on the unit circle.
    #[inline]
    pub fn cis(theta: f64) -> Complex {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// The principal `n`-th root of unity, `e^{2πi/n}`.
    #[inline]
    pub fn root_of_unity(n: usize) -> Complex {
        Complex::cis(2.0 * std::f64::consts::PI / n as f64)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Complex {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared modulus `|z|²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Complex {
        Complex {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// `true` when both parts differ from `other` by at most `eps` —
    /// the comparison used by FFT correctness tests.
    pub fn approx_eq(self, other: Complex, eps: f64) -> bool {
        (self.re - other.re).abs() <= eps && (self.im - other.im).abs() <= eps
    }

    /// Integer power by repeated squaring (exact enough for the twiddle
    /// factors used in tests; production twiddles use `cis` directly).
    pub fn powi(self, mut n: u32) -> Complex {
        let mut base = self;
        let mut acc = Complex::ONE;
        while n > 0 {
            if n & 1 == 1 {
                acc = acc * base;
            }
            base = base * base;
            n >>= 1;
        }
        acc
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.norm_sqr();
        Complex {
            re: (self.re * rhs.re + self.im * rhs.im) / d,
            im: (self.im * rhs.re - self.re * rhs.im) / d,
        }
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Complex {
        Complex::from_re(re)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn field_operations() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0)); // (1+2i)(3-i) = 5+5i
        assert!(((a / b) * b).approx_eq(a, EPS));
        assert_eq!(-a, Complex::new(-1.0, -2.0));
    }

    #[test]
    fn identities() {
        let a = Complex::new(0.7, -0.3);
        assert!((a + Complex::ZERO).approx_eq(a, EPS));
        assert!((a * Complex::ONE).approx_eq(a, EPS));
        assert!((a * Complex::I).approx_eq(Complex::new(0.3, 0.7), EPS));
    }

    #[test]
    fn roots_of_unity() {
        let w = Complex::root_of_unity(4);
        assert!(w.approx_eq(Complex::I, EPS)); // e^{iπ/2}
        assert!(w.powi(4).approx_eq(Complex::ONE, EPS));
        let w8 = Complex::root_of_unity(8);
        assert!(w8.powi(8).approx_eq(Complex::ONE, EPS));
        assert!(w8.powi(4).approx_eq(-Complex::ONE, EPS));
    }

    #[test]
    fn conjugate_and_modulus() {
        let a = Complex::new(3.0, 4.0);
        assert_eq!(a.abs(), 5.0);
        assert_eq!(a.norm_sqr(), 25.0);
        assert_eq!(a.conj(), Complex::new(3.0, -4.0));
        assert!((a * a.conj()).approx_eq(Complex::from_re(25.0), EPS));
    }

    #[test]
    fn powi_matches_repeated_mul() {
        let a = Complex::new(0.9, 0.2);
        let mut expect = Complex::ONE;
        for n in 0..10u32 {
            assert!(a.powi(n).approx_eq(expect, 1e-9), "n={n}");
            expect = expect * a;
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Complex::new(1.0, 2.0)), "1.000000+2.000000i");
        assert_eq!(format!("{}", Complex::new(1.0, -2.0)), "1.000000-2.000000i");
    }
}
