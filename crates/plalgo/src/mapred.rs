//! `map` and `reduce` over PowerLists, through every execution route.
//!
//! Eq. 1 of the paper defines `map` by structural recursion; `reduce` is
//! analogous. This module provides them:
//!
//! * as [`PowerFunction`]s ([`MapFunction`], [`ReduceFunction`]) runnable
//!   by any JPLF executor (sequential / fork-join / MPI-sim), in both the
//!   tie and zip variants ("alternative definitions based on the zip
//!   operator could also be given");
//! * as stream collects (via [`jstreams::PowerMapCollector`] /
//!   [`jstreams::ReduceCollector`]) — wrapped here in the convenience
//!   functions [`map_stream`] and [`reduce_stream`].
//!
//! All routes are tested against the sequential specification in
//! [`powerlist::ops`].

use jplf::{Decomp, PowerFunction};
use jstreams::{power_stream, Decomposition, PowerMapCollector, ReduceCollector};
use powerlist::PowerList;
use std::sync::Arc;

/// `map(f)` as a JPLF PowerFunction.
///
/// The decomposition operator is a parameter: both variants compute the
/// same list (the algebra's Eq. 1 and its zip dual), with different
/// memory access patterns — the subject of the tie-vs-zip ablation bench.
pub struct MapFunction<T, U> {
    decomp: Decomp,
    f: Arc<dyn Fn(&T) -> U + Send + Sync>,
}

impl<T, U> Clone for MapFunction<T, U> {
    fn clone(&self) -> Self {
        MapFunction {
            decomp: self.decomp,
            f: Arc::clone(&self.f),
        }
    }
}

impl<T, U> MapFunction<T, U> {
    /// Map with the given scalar function and decomposition operator.
    pub fn new(decomp: Decomp, f: impl Fn(&T) -> U + Send + Sync + 'static) -> Self {
        MapFunction {
            decomp,
            f: Arc::new(f),
        }
    }
}

impl<T, U> PowerFunction for MapFunction<T, U>
where
    T: Clone + Send + Sync + 'static,
    U: Clone + Send + Sync + 'static,
{
    type Elem = T;
    type Out = PowerList<U>;

    fn decomposition(&self) -> Decomp {
        self.decomp
    }

    fn basic_case(&self, v: &T) -> PowerList<U> {
        PowerList::singleton((self.f)(v))
    }

    fn create_left(&self) -> Self {
        self.clone()
    }

    fn create_right(&self) -> Self {
        self.clone()
    }

    fn combine(&self, l: PowerList<U>, r: PowerList<U>) -> PowerList<U> {
        match self.decomp {
            Decomp::Tie => PowerList::tie(l, r),
            Decomp::Zip => PowerList::zip(l, r),
        }
    }

    /// Leaf kernel: map the sub-list with a tight loop instead of
    /// recursing to singletons (paper §V's specialised basic case).
    fn leaf_case(&self, view: &powerlist::PowerView<T>) -> PowerList<U> {
        PowerList::from_vec(view.iter().map(|x| (self.f)(x)).collect())
            .expect("map preserves the shape invariant")
    }
}

/// A shareable associative binary operator over `T`.
pub type ReduceOp<T> = Arc<dyn Fn(&T, &T) -> T + Send + Sync>;

/// `reduce(op)` as a JPLF PowerFunction (requires an associative `op`).
pub struct ReduceFunction<T> {
    decomp: Decomp,
    op: ReduceOp<T>,
}

impl<T> Clone for ReduceFunction<T> {
    fn clone(&self) -> Self {
        ReduceFunction {
            decomp: self.decomp,
            op: Arc::clone(&self.op),
        }
    }
}

impl<T> ReduceFunction<T> {
    /// Reduce with the given associative operator and decomposition.
    ///
    /// With a non-commutative `op`, only `Decomp::Tie` computes the
    /// left-to-right fold; the zip variant permutes operand order and is
    /// correct only for commutative operators.
    pub fn new(decomp: Decomp, op: impl Fn(&T, &T) -> T + Send + Sync + 'static) -> Self {
        ReduceFunction {
            decomp,
            op: Arc::new(op),
        }
    }
}

impl<T> PowerFunction for ReduceFunction<T>
where
    T: Clone + Send + Sync + 'static,
{
    type Elem = T;
    type Out = T;

    fn decomposition(&self) -> Decomp {
        self.decomp
    }

    fn basic_case(&self, v: &T) -> T {
        v.clone()
    }

    fn create_left(&self) -> Self {
        self.clone()
    }

    fn create_right(&self) -> Self {
        self.clone()
    }

    fn combine(&self, l: T, r: T) -> T {
        (self.op)(&l, &r)
    }

    /// Leaf kernel: an in-order fold. Identical to the recursion for
    /// associative operators (the zip variant's usual commutativity
    /// caveat applies).
    fn leaf_case(&self, view: &powerlist::PowerView<T>) -> T {
        let mut it = view.iter();
        let mut acc = it.next().expect("views are non-empty").clone();
        for x in it {
            acc = (self.op)(&acc, x);
        }
        acc
    }
}

/// `map` through the streams adaptation: ZipSpliterator +
/// [`PowerMapCollector`], parallel by default.
pub fn map_stream<T, U>(
    list: PowerList<T>,
    decomposition: Decomposition,
    f: impl Fn(T) -> U + Send + Sync + 'static,
) -> PowerList<U>
where
    T: Clone + Send + Sync + 'static,
    U: Send + 'static,
{
    power_stream(list, decomposition)
        .collect(PowerMapCollector::new(decomposition, f))
        .into_powerlist()
        .expect("map preserves the shape invariant")
}

/// `reduce` through the streams adaptation.
pub fn reduce_stream<T>(
    list: PowerList<T>,
    decomposition: Decomposition,
    identity: T,
    op: impl Fn(T, T) -> T + Send + Sync + 'static,
) -> T
where
    T: Clone + Send + Sync + 'static,
{
    power_stream(list, decomposition).collect(ReduceCollector::new(identity, op))
}

#[cfg(test)]
mod tests {
    use super::*;
    use jplf::{Executor, ForkJoinExecutor, MpiExecutor, SequentialExecutor};
    use powerlist::tabulate;

    fn input() -> PowerList<i64> {
        tabulate(256, |i| (i as i64 * 31 + 7) % 101).unwrap()
    }

    #[test]
    fn map_function_tie_and_zip_agree() {
        let p = input();
        let spec = powerlist::ops::map(&p, |x| x * 2 + 1);
        let v = p.view();
        let tie =
            SequentialExecutor::new().execute(&MapFunction::new(Decomp::Tie, |x| x * 2 + 1), &v);
        let zip =
            SequentialExecutor::new().execute(&MapFunction::new(Decomp::Zip, |x| x * 2 + 1), &v);
        assert_eq!(tie, spec);
        assert_eq!(zip, spec);
    }

    #[test]
    fn map_function_all_executors_agree() {
        let p = input();
        let spec = powerlist::ops::map(&p, |x| x * x);
        let v = p.view();
        let f = MapFunction::new(Decomp::Zip, |x: &i64| x * x);
        assert_eq!(SequentialExecutor::new().execute(&f, &v), spec);
        assert_eq!(ForkJoinExecutor::new(3, 16).execute(&f, &v), spec);
        assert_eq!(MpiExecutor::new(4).execute(&f, &v), spec);
    }

    #[test]
    fn reduce_function_matches_fold() {
        let p = input();
        let spec = powerlist::ops::reduce(&p, |a, b| a + b);
        let v = p.view();
        let f = ReduceFunction::new(Decomp::Tie, |a: &i64, b: &i64| a + b);
        assert_eq!(SequentialExecutor::new().execute(&f, &v), spec);
        assert_eq!(ForkJoinExecutor::new(2, 8).execute(&f, &v), spec);
        assert_eq!(MpiExecutor::new(8).execute(&f, &v), spec);
    }

    #[test]
    fn reduce_noncommutative_needs_tie() {
        // String concatenation: tie preserves order.
        let p = tabulate(8, |i| i.to_string()).unwrap();
        let f = ReduceFunction::new(Decomp::Tie, |a: &String, b: &String| format!("{a}{b}"));
        assert_eq!(SequentialExecutor::new().execute(&f, &p.view()), "01234567");
    }

    #[test]
    fn stream_map_matches_spec() {
        let p = input();
        let spec = powerlist::ops::map(&p, |x| x - 3);
        for d in [Decomposition::Tie, Decomposition::Zip] {
            assert_eq!(map_stream(p.clone(), d, |x| x - 3), spec, "{d:?}");
        }
    }

    #[test]
    fn stream_reduce_matches_spec() {
        let p = input();
        let spec = powerlist::ops::reduce(&p, |a, b| a + b);
        for d in [Decomposition::Tie, Decomposition::Zip] {
            assert_eq!(reduce_stream(p.clone(), d, 0, |a, b| a + b), spec, "{d:?}");
        }
    }

    #[test]
    fn leaf_kernels_match_template_recursion() {
        // leaf_case must equal compute_sequential on any view, including
        // strided ones (a zip-split residue class).
        let p = input();
        let v = p.clone().view();
        let (even, odd) = v.unzip().unwrap();
        for view in [&v, &even, &odd] {
            let m = MapFunction::new(Decomp::Zip, |x: &i64| x * 5 - 2);
            assert_eq!(m.leaf_case(view), jplf::compute_sequential(&m, view));
            let r = ReduceFunction::new(Decomp::Tie, |a: &i64, b: &i64| a + b);
            assert_eq!(r.leaf_case(view), jplf::compute_sequential(&r, view));
        }
    }

    #[test]
    fn singleton_map_reduce() {
        let p = PowerList::singleton(5i64);
        assert_eq!(
            map_stream(p.clone(), Decomposition::Zip, |x| x + 1).as_slice(),
            &[6]
        );
        assert_eq!(reduce_stream(p, Decomposition::Tie, 0, |a, b| a + b), 5);
    }
}
