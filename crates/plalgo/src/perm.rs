//! `inv` as a JPLF PowerFunction — the paper's flagship example of a
//! function that *needs both* deconstruction operators (Eq. 2):
//! the input splits with **tie** while the output recombines with
//! **zip** (or dually). Runs on every executor; tested against the
//! index-arithmetic implementation in [`powerlist::perm`].

use jplf::{Decomp, PowerFunction};
use powerlist::PowerList;

impl<T> PowerFunction for InvFunctionTyped<T>
where
    T: Clone + Send + Sync + 'static,
{
    type Elem = T;
    type Out = PowerList<T>;

    fn decomposition(&self) -> Decomp {
        Decomp::Tie
    }

    fn basic_case(&self, v: &T) -> PowerList<T> {
        PowerList::singleton(v.clone())
    }

    fn create_left(&self) -> Self {
        InvFunctionTyped::default()
    }

    fn create_right(&self) -> Self {
        InvFunctionTyped::default()
    }

    /// The crossover that defines `inv`: tie-split children recombine
    /// with **zip**.
    fn combine(&self, l: PowerList<T>, r: PowerList<T>) -> PowerList<T> {
        PowerList::zip(l, r)
    }

    /// Leaf kernel: bit-reverse the materialised sub-list by index
    /// arithmetic.
    fn leaf_case(&self, view: &powerlist::PowerView<T>) -> PowerList<T> {
        powerlist::perm::inv_indexed(&view.to_powerlist())
    }
}

/// Eq. 2 as a JPLF PowerFunction: `inv(p | q) = inv(p) ♮ inv(q)`. The
/// function carries no parameters; the type parameter fixes the element
/// type for the `PowerFunction` machinery.
pub struct InvFunctionTyped<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T> Default for InvFunctionTyped<T> {
    fn default() -> Self {
        InvFunctionTyped {
            _marker: std::marker::PhantomData,
        }
    }
}

impl<T> Clone for InvFunctionTyped<T> {
    fn clone(&self) -> Self {
        InvFunctionTyped::default()
    }
}

impl<T> std::fmt::Debug for InvFunctionTyped<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "InvFunction")
    }
}

/// `inv` through a JPLF executor.
pub fn inv_via<E, T>(executor: &E, input: &PowerList<T>) -> PowerList<T>
where
    E: jplf::Executor,
    T: Clone + Send + Sync + 'static,
{
    executor.execute(&InvFunctionTyped::<T>::default(), &input.clone().view())
}

#[cfg(test)]
mod tests {
    use super::*;
    use jplf::{ForkJoinExecutor, MpiExecutor, SequentialExecutor};
    use powerlist::perm::inv_indexed;
    use powerlist::tabulate;

    #[test]
    fn matches_index_arithmetic() {
        for k in 0..9 {
            let p = tabulate(1 << k, |i| i as i64 * 5 - 3).unwrap();
            let got = inv_via(&SequentialExecutor::new(), &p);
            assert_eq!(got, inv_indexed(&p), "k={k}");
        }
    }

    #[test]
    fn all_executors_agree() {
        let p = tabulate(256, |i| i).unwrap();
        let expected = inv_indexed(&p);
        assert_eq!(inv_via(&SequentialExecutor::new(), &p), expected);
        assert_eq!(inv_via(&ForkJoinExecutor::new(3, 16), &p), expected);
        assert_eq!(inv_via(&MpiExecutor::new(4), &p), expected);
    }

    #[test]
    fn involution_through_executors() {
        let p = tabulate(64, |i| (i * 31) % 17).unwrap();
        let exec = ForkJoinExecutor::new(2, 8);
        assert_eq!(inv_via(&exec, &inv_via(&exec, &p)), p);
    }
}
