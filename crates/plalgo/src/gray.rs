//! Gray codes over PowerLists.
//!
//! The reflected binary Gray code has the classic PowerList shape:
//!
//! ```text
//! gray(0)  = [ε]
//! gray(n)  = (0 ++ gray(n-1)) | (1 ++ rev(gray(n-1)))
//! ```
//!
//! — prepend a 0-bit to the codes, then a 1-bit to the *reversed* codes,
//! and tie. The structural version is checked against the closed form
//! `g(i) = i ⊕ (i >> 1)`.

use powerlist::{PowerList, Result};

/// The `n`-bit reflected Gray code as a PowerList of `2^n` words, by the
/// structural recursion.
pub fn gray_structural(bits: u32) -> Result<PowerList<u64>> {
    assert!(bits < 63, "gray codes limited to 62 bits");
    fn go(bits: u32) -> Vec<u64> {
        if bits == 0 {
            return vec![0];
        }
        let prev = go(bits - 1);
        let hi = 1u64 << (bits - 1);
        let mut out = Vec::with_capacity(prev.len() * 2);
        out.extend(prev.iter().copied()); // 0 ++ gray(n-1)
        out.extend(prev.iter().rev().map(|c| hi | c)); // 1 ++ rev(gray(n-1))
        out
    }
    PowerList::from_vec(go(bits))
}

/// The closed form `g(i) = i ⊕ (i >> 1)`.
pub fn gray_closed(bits: u32) -> Result<PowerList<u64>> {
    assert!(bits < 63, "gray codes limited to 62 bits");
    powerlist::tabulate(1usize << bits, |i| (i as u64) ^ ((i as u64) >> 1))
}

/// Decodes a Gray word back to its rank in the sequence.
pub fn gray_decode(mut g: u64) -> u64 {
    let mut b = 0u64;
    while g != 0 {
        b ^= g;
        g >>= 1;
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_bit_sequence() {
        let g = gray_structural(3).unwrap();
        assert_eq!(
            g.as_slice(),
            &[0b000, 0b001, 0b011, 0b010, 0b110, 0b111, 0b101, 0b100]
        );
    }

    #[test]
    fn structural_matches_closed_form() {
        for bits in 0..12 {
            assert_eq!(
                gray_structural(bits).unwrap(),
                gray_closed(bits).unwrap(),
                "bits={bits}"
            );
        }
    }

    #[test]
    fn adjacent_codes_differ_in_one_bit() {
        let g = gray_structural(8).unwrap();
        for w in g.as_slice().windows(2) {
            assert_eq!((w[0] ^ w[1]).count_ones(), 1, "{:b} vs {:b}", w[0], w[1]);
        }
        // and the sequence is cyclic:
        let first = g[0];
        let last = g[g.len() - 1];
        assert_eq!((first ^ last).count_ones(), 1);
    }

    #[test]
    fn codes_are_a_permutation() {
        let g = gray_structural(10).unwrap();
        let mut seen = vec![false; 1 << 10];
        for &c in g.iter() {
            assert!(!seen[c as usize], "duplicate {c}");
            seen[c as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn decode_inverts_encode() {
        for i in 0u64..1024 {
            assert_eq!(gray_decode(i ^ (i >> 1)), i);
        }
    }

    #[test]
    fn zero_bits_is_singleton() {
        let g = gray_structural(0).unwrap();
        assert_eq!(g.as_slice(), &[0]);
    }
}
