//! Polynomial multiplication via the PowerList FFT — a downstream
//! application composing two of the paper's catalogue functions
//! (Eq. 3's FFT and the extended element-wise `×` of Section II).
//!
//! `mul(a, b) = ifft(fft(pad a) × fft(pad b))`, the classical
//! convolution theorem route: O(n log n) against the O(n²) schoolbook
//! baseline that the tests validate against.

use crate::complex::Complex;
use crate::fft::{fft_seq, ifft};
use powerlist::{is_power_of_two, ops, PowerList};

/// Schoolbook O(n²) multiplication — the correctness oracle.
pub fn poly_mul_naive(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return vec![];
    }
    let mut out = vec![0.0; a.len() + b.len() - 1];
    for (i, &x) in a.iter().enumerate() {
        for (j, &y) in b.iter().enumerate() {
            out[i + j] += x * y;
        }
    }
    out
}

/// FFT-based multiplication of two coefficient slices (ascending
/// order). Returns the product's coefficients, length
/// `a.len() + b.len() - 1`.
pub fn poly_mul_fft(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return vec![];
    }
    let out_len = a.len() + b.len() - 1;
    let mut n = 1usize;
    while n < out_len {
        n *= 2;
    }
    let pad = |s: &[f64]| -> PowerList<Complex> {
        let mut v: Vec<Complex> = s.iter().map(|&x| Complex::from_re(x)).collect();
        v.resize(n, Complex::ZERO);
        PowerList::from_vec(v).expect("padded to a power of two")
    };
    debug_assert!(is_power_of_two(n));
    let fa = fft_seq(&pad(a));
    let fb = fft_seq(&pad(b));
    // The extended element-wise × of the PowerList algebra:
    let prod = ops::mul(&fa, &fb).expect("similar spectra");
    let back = ifft(&prod);
    back.iter().take(out_len).map(|z| z.re).collect()
}

/// Convolution of two equal-length power-of-two signals (cyclic padding
/// avoided by doubling), exposed for signal-processing callers.
pub fn convolve(a: &PowerList<f64>, b: &PowerList<f64>) -> Vec<f64> {
    poly_mul_fft(a.as_slice(), b.as_slice())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: &[f64], b: &[f64], eps: f64) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() <= eps)
    }

    #[test]
    fn small_products() {
        // (1 + x)(1 - x) = 1 - x²
        let p = poly_mul_fft(&[1.0, 1.0], &[1.0, -1.0]);
        assert!(close(&p, &[1.0, 0.0, -1.0], 1e-9), "{p:?}");
        // (x)(x) = x²
        let p = poly_mul_fft(&[0.0, 1.0], &[0.0, 1.0]);
        assert!(close(&p, &[0.0, 0.0, 1.0], 1e-9), "{p:?}");
    }

    #[test]
    fn matches_naive_various_sizes() {
        for (la, lb) in [(1, 1), (2, 3), (5, 8), (16, 16), (31, 33), (64, 7)] {
            let a: Vec<f64> = (0..la).map(|i| ((i * 7 + 1) % 5) as f64 - 2.0).collect();
            let b: Vec<f64> = (0..lb).map(|i| ((i * 3 + 2) % 7) as f64 - 3.0).collect();
            let fast = poly_mul_fft(&a, &b);
            let slow = poly_mul_naive(&a, &b);
            assert!(close(&fast, &slow, 1e-7), "la={la} lb={lb}");
        }
    }

    #[test]
    fn identity_polynomial() {
        let a = [3.0, -1.0, 2.0, 5.0];
        let one = [1.0];
        assert!(close(&poly_mul_fft(&a, &one), &a, 1e-9));
    }

    #[test]
    fn empty_inputs() {
        assert!(poly_mul_fft(&[], &[1.0]).is_empty());
        assert!(poly_mul_naive(&[1.0], &[]).is_empty());
    }

    #[test]
    fn product_degree_and_evaluation_agree() {
        // P(x)·Q(x) evaluated at a point equals the product of the
        // evaluations — ties polymul back to the vp machinery.
        let a: Vec<f64> = (0..13).map(|i| (i % 4) as f64 - 1.5).collect();
        let b: Vec<f64> = (0..9).map(|i| (i % 3) as f64).collect();
        let prod = poly_mul_fft(&a, &b);
        let x = 0.83;
        let lhs = crate::poly::horner(&prod, x);
        let rhs = crate::poly::horner(&a, x) * crate::poly::horner(&b, x);
        assert!((lhs - rhs).abs() < 1e-8 * (1.0 + rhs.abs()));
    }

    #[test]
    fn convolve_powerlists() {
        let a = PowerList::from_vec(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = PowerList::from_vec(vec![1.0, 0.0, -1.0, 0.0]).unwrap();
        let c = convolve(&a, &b);
        let expected = poly_mul_naive(a.as_slice(), b.as_slice());
        assert!(close(&c, &expected, 1e-9));
    }
}
