//! Generic Eq.-5 functions: descending-phase data transformations.
//!
//! Section II exhibits the shape
//!
//! ```text
//! f([a])    = [a]
//! f(p | q)  = f(p ⊕ q) | f(p ⊗ q)
//! ```
//!
//! — tie-based functions whose *descending phase transforms the data*
//! with two extended binary operators before recursing. Section V
//! observes these are simpler for the streams adaptation than the
//! polynomial (no global state: "the elements should be updated
//! correspondingly, before the new Spliterator instance is created").
//!
//! [`TieDescentFunction`] packages the shape generically over `⊕`/`⊗`;
//! the Haar-like wavelet transform (`⊕ = +`, `⊗ = −`) is the worked
//! instance used in tests and examples.

use jplf::{Decomp, PowerFunction};
use powerlist::{ops::zip_with, PowerList, PowerView};
use std::sync::Arc;

/// A shareable extended binary operator over `T`.
pub type ExtendedOp<T> = Arc<dyn Fn(&T, &T) -> T + Send + Sync>;

/// `f(p | q) = f(p ⊕ q) | f(p ⊗ q)` as a JPLF PowerFunction.
pub struct TieDescentFunction<T> {
    oplus: ExtendedOp<T>,
    otimes: ExtendedOp<T>,
}

impl<T> Clone for TieDescentFunction<T> {
    fn clone(&self) -> Self {
        TieDescentFunction {
            oplus: Arc::clone(&self.oplus),
            otimes: Arc::clone(&self.otimes),
        }
    }
}

impl<T> TieDescentFunction<T> {
    /// Builds the function from the two extended operators.
    pub fn new(
        oplus: impl Fn(&T, &T) -> T + Send + Sync + 'static,
        otimes: impl Fn(&T, &T) -> T + Send + Sync + 'static,
    ) -> Self {
        TieDescentFunction {
            oplus: Arc::new(oplus),
            otimes: Arc::new(otimes),
        }
    }
}

impl<T> PowerFunction for TieDescentFunction<T>
where
    T: Clone + Send + Sync + 'static,
{
    type Elem = T;
    type Out = PowerList<T>;

    fn decomposition(&self) -> Decomp {
        Decomp::Tie
    }

    fn basic_case(&self, v: &T) -> PowerList<T> {
        PowerList::singleton(v.clone())
    }

    fn create_left(&self) -> Self {
        self.clone()
    }

    fn create_right(&self) -> Self {
        self.clone()
    }

    fn combine(&self, l: PowerList<T>, r: PowerList<T>) -> PowerList<T> {
        PowerList::tie(l, r)
    }

    /// The Eq. 5 descending phase: the recursive calls run on `p ⊕ q`
    /// and `p ⊗ q` instead of on `p` and `q`.
    fn transform_halves(
        &self,
        left: &PowerView<T>,
        right: &PowerView<T>,
    ) -> jplf::TransformedHalves<T> {
        let p = left.to_powerlist();
        let q = right.to_powerlist();
        let a = zip_with(&p, &q, |x, y| (self.oplus)(x, y)).expect("halves are similar");
        let b = zip_with(&p, &q, |x, y| (self.otimes)(x, y)).expect("halves are similar");
        Some((a, b))
    }
}

/// The (unnormalised) Haar-like transform: Eq. 5 with `⊕ = +`, `⊗ = −`.
/// Applied to a signal it produces the hierarchy of sums and differences
/// (the Walsh–Hadamard transform in sequency order, in fact).
pub fn haar_like(input: &PowerList<f64>) -> PowerList<f64> {
    let f = TieDescentFunction::new(|a: &f64, b: &f64| a + b, |a: &f64, b: &f64| a - b);
    jplf::compute_sequential(&f, &input.clone().view())
}

#[cfg(test)]
mod tests {
    use super::*;
    use jplf::{Executor, ForkJoinExecutor, MpiExecutor, SequentialExecutor};
    use powerlist::tabulate;

    /// Direct Walsh–Hadamard (natural-ordered) oracle for the ⊕=+, ⊗=−
    /// instance: WHT[k] = Σ_j x[j]·(−1)^{popcount(j&k̃)} with the
    /// recursion's specific ordering. We instead verify structural
    /// properties and cross-executor agreement (the recursion *is* the
    /// specification).
    fn signal(n: usize) -> PowerList<f64> {
        tabulate(n, |i| ((i * 7 + 3) % 11) as f64 - 5.0).unwrap()
    }

    #[test]
    fn length_two_is_sum_diff() {
        let p = PowerList::from_vec(vec![5.0, 3.0]).unwrap();
        assert_eq!(haar_like(&p).as_slice(), &[8.0, 2.0]);
    }

    #[test]
    fn first_output_is_total_sum() {
        // Repeated ⊕=+ descent makes element 0 the grand total.
        let p = signal(64);
        let total: f64 = p.iter().sum();
        let out = haar_like(&p);
        assert!((out[0] - total).abs() < 1e-9);
    }

    #[test]
    fn constant_signal_concentrates() {
        // All differences vanish for a constant signal.
        let p = PowerList::repeat(2.0, 16).unwrap();
        let out = haar_like(&p);
        assert_eq!(out[0], 32.0);
        for &v in &out.as_slice()[1..] {
            assert_eq!(v, 0.0);
        }
    }

    #[test]
    fn energy_scales_by_n() {
        // Walsh–Hadamard preserves energy up to factor n.
        let p = signal(32);
        let e_in: f64 = p.iter().map(|x| x * x).sum();
        let out = haar_like(&p);
        let e_out: f64 = out.iter().map(|x| x * x).sum();
        assert!((e_out - 32.0 * e_in).abs() < 1e-6 * e_out.abs().max(1.0));
    }

    #[test]
    fn executors_agree() {
        let p = signal(128);
        let f = TieDescentFunction::new(|a: &f64, b: &f64| a + b, |a: &f64, b: &f64| a - b);
        let v = p.clone().view();
        let seq = SequentialExecutor::new().execute(&f, &v);
        let fj = ForkJoinExecutor::new(3, 8).execute(&f, &v);
        let mpi = MpiExecutor::new(4).execute(&f, &v);
        assert_eq!(seq, fj);
        assert_eq!(seq, mpi);
        assert_eq!(seq, haar_like(&p));
    }

    #[test]
    fn other_operator_pairs() {
        // ⊕ = max, ⊗ = min: a "tournament" transform; sanity-check that
        // element 0 becomes the maximum.
        let p = signal(32);
        let f = TieDescentFunction::new(|a: &f64, b: &f64| a.max(*b), |a: &f64, b: &f64| a.min(*b));
        let out = SequentialExecutor::new().execute(&f, &p.clone().view());
        let max = p.iter().fold(f64::MIN, |m, &x| m.max(x));
        assert_eq!(out[0], max);
        let min = p.iter().fold(f64::MAX, |m, &x| m.min(x));
        assert_eq!(out[out.len() - 1], min);
    }

    #[test]
    fn involution_up_to_scaling() {
        // WHT∘WHT = n·identity for the ± instance.
        let p = signal(16);
        let twice = haar_like(&haar_like(&p));
        for (a, b) in twice.iter().zip(p.iter()) {
            assert!((a - 16.0 * b).abs() < 1e-9, "{a} vs 16*{b}");
        }
    }
}
