//! Polynomial evaluation — the paper's central worked example and its
//! benchmark workload (Figures 3–4).
//!
//! Eq. 4 of the paper, for ascending coefficients `P(x) = Σ aᵢ xⁱ`:
//!
//! ```text
//! vp([a], x)    = a
//! vp(p ♮ q, x)  = vp(p, x²) + x · vp(q, x²)
//! ```
//!
//! The zip deconstruction sends even-index coefficients left and
//! odd-index right; the *descending phase does real work* (squaring the
//! point), which is exactly what makes this function the paper's stress
//! test for the streams adaptation.
//!
//! Three implementations, all verified against [`horner`]:
//!
//! * [`VpFunction`] — the JPLF template, carrying `x` down with
//!   `create_left`/`create_right` (both descend with `x²`);
//! * [`PolynomialCollector`] + [`poly_spliterator`] — the streams
//!   adaptation: a [`HookedZipSpliterator`] doubles a per-spliterator
//!   `x_degree` on every split and max-updates the shared one (the
//!   paper's synchronized inner-class mechanism); the collector's
//!   supplier reads the shared degree to know each leaf's stride;
//! * [`eval_seq_stream`] — "a simple stream based computation", the
//!   paper's sequential baseline.
//!
//! ### A note on the paper's combiner
//!
//! The paper's Java combiner (`pv1.val·x^{x_degree} + pv2.val` after
//! halving `x_degree`) is the mirror image of ours (`left + x^{s}·right`)
//! because the two are equivalent for the coefficient orderings each
//! assumes (descending vs ascending). We fix the ascending convention and
//! verify against Horner, which the paper's text (Eq. 4) also uses.

use jplf::{Decomp, PowerFunction};
use jstreams::{
    stream_support, Collector, HookedZipSpliterator, ItemSource, SharedState, Stream,
    ZipSpliterator,
};
use powerlist::PowerList;
use std::sync::Arc;

/// Sequential Horner evaluation of ascending coefficients — the
/// specification all parallel versions are tested against.
pub fn horner(coeffs: &[f64], x: f64) -> f64 {
    let mut acc = 0.0;
    for &c in coeffs.iter().rev() {
        acc = acc * x + c;
    }
    acc
}

/// The paper's sequential baseline: polynomial evaluation as "a simple
/// stream based computation" — a sequential stream of (coefficient,
/// running power) folds.
pub fn eval_seq_stream(coeffs: PowerList<f64>, x: f64) -> f64 {
    // A sequential stream cannot carry the running power through reduce,
    // so evaluate with an indexed map + sum, as a plain Java stream user
    // would (`IntStream.range(...).mapToDouble(i -> a[i]*pow(x,i)).sum()`
    // is the shape; we keep the running-power optimisation since the
    // paper's baseline is a tuned sequential loop).
    let mut acc = 0.0;
    let mut pw = 1.0;
    let mut src = jstreams::SliceSpliterator::new(coeffs.into_vec());
    src.for_each_remaining(&mut |c: f64| {
        acc += c * pw;
        pw *= x;
    });
    acc
}

/// Eq. 4 as a JPLF PowerFunction: `vp(p ♮ q, x) = vp(p, x²) + x·vp(q, x²)`.
#[derive(Debug, Clone, Copy)]
pub struct VpFunction {
    /// The evaluation point at this node of the recursion.
    pub x: f64,
}

impl VpFunction {
    /// Evaluate at `x`.
    pub fn new(x: f64) -> Self {
        VpFunction { x }
    }
}

impl PowerFunction for VpFunction {
    type Elem = f64;
    type Out = f64;

    fn decomposition(&self) -> Decomp {
        Decomp::Zip
    }

    fn basic_case(&self, a: &f64) -> f64 {
        *a
    }

    /// Descending phase: both halves are evaluated at `x²` (the
    /// additional splitting-phase computation of Eq. 4).
    fn create_left(&self) -> Self {
        VpFunction { x: self.x * self.x }
    }

    fn create_right(&self) -> Self {
        VpFunction { x: self.x * self.x }
    }

    fn combine(&self, left: f64, right: f64) -> f64 {
        left + self.x * right
    }

    /// Leaf kernel: "the computation on these sublists could be defined
    /// as a sequential computation of a polynomial in a given point"
    /// (paper §V) — the sub-list at a node with point `x` is, by Eq. 4,
    /// a polynomial to be evaluated at that `x`.
    fn leaf_case(&self, view: &powerlist::PowerView<f64>) -> f64 {
        let mut acc = 0.0;
        let mut pw = 1.0;
        for a in view.iter() {
            acc += a * pw;
            pw *= self.x;
        }
        acc
    }
}

/// Accumulation container of the streams polynomial collector: a partial
/// value plus the stride (as a power of `x`) this partial is expressed
/// in. Mirrors the paper's `PolynomialValue` (x, val, x_degree).
#[derive(Debug, Clone, Copy)]
pub struct PolyAcc {
    /// Partial polynomial value.
    pub val: f64,
    /// Running power of `y = x^stride` used by the leaf accumulation.
    pw: f64,
    /// `y` itself.
    y: f64,
    /// The stride (paper: `x_degree`) this partial container works at.
    pub stride: u64,
}

/// The streams-adaptation polynomial evaluator (the paper's
/// `PolynomialValue` collector).
///
/// Holds the evaluation point and the **shared splitting state**: the
/// global `x_degree` that split hooks max-update and suppliers read —
/// the general mechanism of Section V rendered as [`SharedState`].
pub struct PolynomialCollector {
    x: f64,
    degree: SharedState<u64>,
}

impl PolynomialCollector {
    /// Collector evaluating at `x`, with a fresh shared degree of 1.
    pub fn new(x: f64) -> Self {
        PolynomialCollector {
            x,
            degree: SharedState::new(1),
        }
    }

    /// The shared splitting state, to be wired into the spliterator hook
    /// (the paper builds the spliterator *through* the collector object
    /// for exactly this reason).
    pub fn degree_state(&self) -> SharedState<u64> {
        self.degree.clone()
    }

    /// The evaluation point.
    pub fn x(&self) -> f64 {
        self.x
    }
}

impl Collector<f64> for PolynomialCollector {
    type Acc = PolyAcc;
    type Out = f64;

    /// "The supplier provides a new instance … created as a copy of the
    /// initial PolynomialValue instance": each leaf container snapshots
    /// the shared degree, which — depths being uniform — equals this
    /// leaf's stride.
    fn supplier(&self) -> PolyAcc {
        let stride = self.degree.get();
        PolyAcc {
            val: 0.0,
            pw: 1.0,
            y: self.x.powi(stride as i32),
            stride,
        }
    }

    /// Leaf phase: ascending accumulation in `y = x^stride` — the
    /// sequential polynomial evaluation on the leaf sub-list the paper
    /// suggests overriding `forEachRemaining` with.
    fn accumulate(&self, acc: &mut PolyAcc, c: f64) {
        acc.val += c * acc.pw;
        acc.pw *= acc.y;
    }

    /// Ascending phase: `left + x^{s}·right` with `s` the children's
    /// stride halved (the paper's `x_degree /= 2` step).
    fn combine(&self, left: PolyAcc, right: PolyAcc) -> PolyAcc {
        debug_assert_eq!(
            left.stride, right.stride,
            "uniform decomposition depth guarantees sibling strides match"
        );
        let s = left.stride / 2;
        PolyAcc {
            val: left.val + self.x.powi(s as i32) * right.val,
            pw: 1.0,
            y: self.x.powi(s.max(1) as i32),
            stride: s,
        }
    }

    fn finish(&self, acc: PolyAcc) -> f64 {
        acc.val
    }

    /// Zero-copy leaf: the same ascending accumulation in `y = x^stride`,
    /// run directly over the borrowed coefficient run — a zip-split
    /// residue class arrives as the strided form.
    fn leaf_slice(&self, items: &[f64]) -> Option<PolyAcc> {
        self.leaf_strided(items, 1)
    }

    fn leaf_strided(&self, items: &[f64], step: usize) -> Option<PolyAcc> {
        let mut acc = self.supplier();
        for &c in items.iter().step_by(step) {
            acc.val += c * acc.pw;
            acc.pw *= acc.y;
        }
        Some(acc)
    }
}

/// Builds the specialised spliterator for [`PolynomialCollector`]: a
/// [`HookedZipSpliterator`] whose split hook doubles the local
/// `x_degree` and max-updates the collector's shared one — the paper's
/// `PZipSpliterator` inner class.
pub fn poly_spliterator(
    coeffs: PowerList<f64>,
    collector: &PolynomialCollector,
) -> HookedZipSpliterator<f64, u64> {
    let shared = collector.degree_state();
    let hook: Arc<dyn Fn(&mut u64) -> u64 + Send + Sync> = Arc::new(move |local| {
        *local *= 2; // "x_degree *= 2; // !!!!! updating the exponent"
        shared.update_max(*local); // the synchronized block
        *local
    });
    HookedZipSpliterator::new(ZipSpliterator::over(coeffs), 1, hook)
}

/// The **tupling transformation** of the paper's reference \[22\]
/// ("Transforming powerlist based divide&conquer programs for an
/// improved execution model"): polynomial evaluation rewritten as a
/// bottom-up **tie** reduction over `(value, power)` pairs, eliminating
/// the descending phase entirely.
///
/// For a sub-list of coefficients `c₀..c_{m-1}` the pair is
/// `(Σ cᵢ xⁱ, x^m)`; two adjacent sub-results combine as
///
/// ```text
/// (v₁, p₁) ⊙ (v₂, p₂) = (v₁ + p₁·v₂, p₁·p₂)
/// ```
///
/// — an associative operator, so no splitting-phase state (no hooked
/// spliterator, no shared `x_degree`) is needed: a plain
/// `TieSpliterator` + collector suffices. This is the ablation the
/// benchmark suite contrasts with the paper's hooked-spliterator
/// formulation (EXPERIMENTS.md, Ablation D).
#[derive(Debug, Clone, Copy)]
pub struct TupledVp {
    /// The evaluation point (never changes during descent — that is the
    /// point of the transformation).
    pub x: f64,
}

impl TupledVp {
    /// Evaluate at `x`.
    pub fn new(x: f64) -> Self {
        TupledVp { x }
    }
}

impl PowerFunction for TupledVp {
    type Elem = f64;
    type Out = (f64, f64); // (value, x^length)

    fn decomposition(&self) -> Decomp {
        Decomp::Tie
    }

    fn basic_case(&self, a: &f64) -> (f64, f64) {
        (*a, self.x)
    }

    fn create_left(&self) -> Self {
        *self
    }

    fn create_right(&self) -> Self {
        *self
    }

    fn combine(&self, left: (f64, f64), right: (f64, f64)) -> (f64, f64) {
        (left.0 + left.1 * right.0, left.1 * right.1)
    }

    /// Leaf kernel: evaluate the block and its total power in one pass.
    fn leaf_case(&self, view: &powerlist::PowerView<f64>) -> (f64, f64) {
        let mut acc = 0.0;
        let mut pw = 1.0;
        for a in view.iter() {
            acc += a * pw;
            pw *= self.x;
        }
        (acc, pw)
    }
}

/// The tupled evaluator as a stream collector: a plain tie-decomposed
/// mutable reduction over `(value, power)` — no shared split state.
pub struct TupledVpCollector {
    x: f64,
}

impl TupledVpCollector {
    /// Collector evaluating at `x`.
    pub fn new(x: f64) -> Self {
        TupledVpCollector { x }
    }
}

impl Collector<f64> for TupledVpCollector {
    type Acc = (f64, f64); // (value so far, x^count)
    type Out = f64;

    fn supplier(&self) -> (f64, f64) {
        (0.0, 1.0)
    }

    fn accumulate(&self, acc: &mut (f64, f64), c: f64) {
        acc.0 += c * acc.1;
        acc.1 *= self.x;
    }

    fn combine(&self, left: (f64, f64), right: (f64, f64)) -> (f64, f64) {
        (left.0 + left.1 * right.0, left.1 * right.1)
    }

    fn finish(&self, acc: (f64, f64)) -> f64 {
        acc.0
    }

    /// Zero-copy leaf: evaluate the block and its total power in one
    /// pass over the borrowed run.
    fn leaf_slice(&self, items: &[f64]) -> Option<(f64, f64)> {
        self.leaf_strided(items, 1)
    }

    fn leaf_strided(&self, items: &[f64], step: usize) -> Option<(f64, f64)> {
        let mut v = 0.0;
        let mut pw = 1.0;
        for &c in items.iter().step_by(step) {
            v += c * pw;
            pw *= self.x;
        }
        Some((v, pw))
    }
}

/// End-to-end tupled evaluation through the streams adaptation (plain
/// `TieSpliterator`, parallel).
pub fn eval_tupled_stream(coeffs: PowerList<f64>, x: f64) -> f64 {
    let sp = jstreams::TieSpliterator::over(coeffs);
    stream_support(sp, true).collect(TupledVpCollector::new(x))
}

/// End-to-end parallel evaluation through the streams adaptation: builds
/// the collector, its hooked spliterator, the parallel stream, and runs
/// the collect — the code of the paper's final Section IV listing.
pub fn eval_par_stream(coeffs: PowerList<f64>, x: f64) -> f64 {
    eval_par_stream_with(coeffs, x, None, None)
}

/// [`eval_par_stream`] with an explicit pool / leaf size (used by the
/// benchmark harness to control parallelism degree).
pub fn eval_par_stream_with(
    coeffs: PowerList<f64>,
    x: f64,
    pool: Option<Arc<forkjoin::ForkJoinPool>>,
    leaf_size: Option<usize>,
) -> f64 {
    let collector = PolynomialCollector::new(x);
    let spliterator = poly_spliterator(coeffs, &collector);
    let mut stream: Stream<f64, _> = stream_support(spliterator, true);
    if let Some(p) = pool {
        stream = stream.with_pool(p);
    }
    if let Some(l) = leaf_size {
        stream = stream.with_leaf_size(l);
    }
    stream.collect(collector)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jplf::{Executor, ForkJoinExecutor, MpiExecutor, SequentialExecutor};
    use powerlist::tabulate;

    fn coeffs(n: usize) -> PowerList<f64> {
        tabulate(n, |i| ((i * 37 + 11) % 19) as f64 - 9.0).unwrap()
    }

    fn rel_close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn horner_basics() {
        assert_eq!(horner(&[3.0], 2.0), 3.0);
        // 1 + 2x + 3x² at x=2 → 1 + 4 + 12 = 17
        assert_eq!(horner(&[1.0, 2.0, 3.0], 2.0), 17.0);
        assert_eq!(horner(&[5.0, -1.0], 0.0), 5.0);
    }

    #[test]
    fn vp_function_matches_horner() {
        for k in 0..10 {
            let p = coeffs(1 << k);
            let x = 0.987;
            let expected = horner(p.as_slice(), x);
            let got = SequentialExecutor::new().execute(&VpFunction::new(x), &p.view());
            assert!(rel_close(got, expected), "k={k}: {got} vs {expected}");
        }
    }

    #[test]
    fn vp_function_parallel_executors() {
        let p = coeffs(1 << 12);
        let x = 1.0000001;
        let expected = horner(p.as_slice(), x);
        let v = p.view();
        let fj = ForkJoinExecutor::new(3, 64).execute(&VpFunction::new(x), &v);
        assert!(rel_close(fj, expected), "forkjoin: {fj} vs {expected}");
        let mpi = MpiExecutor::new(4).execute(&VpFunction::new(x), &v);
        assert!(rel_close(mpi, expected), "mpi: {mpi} vs {expected}");
    }

    #[test]
    fn seq_stream_baseline_matches_horner() {
        let p = coeffs(1 << 10);
        let x = -0.5;
        assert!(rel_close(
            eval_seq_stream(p.clone(), x),
            horner(p.as_slice(), x)
        ));
    }

    #[test]
    fn par_stream_matches_horner_various_sizes() {
        for k in [0usize, 1, 2, 4, 8, 12] {
            let p = coeffs(1 << k);
            let x = 0.9993;
            let expected = horner(p.as_slice(), x);
            let got = eval_par_stream(p, x);
            assert!(rel_close(got, expected), "k={k}: {got} vs {expected}");
        }
    }

    #[test]
    fn par_stream_various_leaf_sizes() {
        let p = coeffs(1 << 10);
        let x = 1.0001;
        let expected = horner(p.as_slice(), x);
        for leaf in [1usize, 2, 16, 256, 1024] {
            let got = eval_par_stream_with(p.clone(), x, None, Some(leaf));
            assert!(rel_close(got, expected), "leaf={leaf}: {got} vs {expected}");
        }
    }

    #[test]
    fn shared_degree_reaches_leaf_count() {
        let p = coeffs(1 << 8);
        let collector = PolynomialCollector::new(0.5);
        let state = collector.degree_state();
        let spliterator = poly_spliterator(p, &collector);
        let _ = stream_support(spliterator, true)
            .with_leaf_size(16) // 256 / 16 = 16 leaves
            .collect(collector);
        assert_eq!(state.get(), 16, "global x_degree = number of leaves");
    }

    #[test]
    fn negative_and_zero_points() {
        let p = coeffs(64);
        for x in [-1.5, -1.0, 0.0, 1.0] {
            let expected = horner(p.as_slice(), x);
            let got = eval_par_stream(p.clone(), x);
            assert!(rel_close(got, expected), "x={x}: {got} vs {expected}");
        }
    }

    #[test]
    fn tupled_function_matches_horner() {
        for k in 0..12 {
            let p = coeffs(1 << k);
            let x = 0.998;
            let expected = horner(p.as_slice(), x);
            let (v, pw) = SequentialExecutor::new().execute(&TupledVp::new(x), &p.clone().view());
            assert!(rel_close(v, expected), "k={k}: {v} vs {expected}");
            assert!(rel_close(pw, x.powi(1 << k)), "power component");
        }
    }

    #[test]
    fn tupled_parallel_executors() {
        let p = coeffs(1 << 10);
        let x = 1.0001;
        let expected = horner(p.as_slice(), x);
        let v = p.view();
        let (fj, _) = ForkJoinExecutor::new(3, 32).execute(&TupledVp::new(x), &v);
        assert!(rel_close(fj, expected));
        let (mpi, _) = MpiExecutor::new(4).execute(&TupledVp::new(x), &v);
        assert!(rel_close(mpi, expected));
    }

    #[test]
    fn tupled_stream_matches_horner() {
        for k in [0usize, 1, 5, 10] {
            let p = coeffs(1 << k);
            let x = -0.999;
            let expected = horner(p.as_slice(), x);
            let got = eval_tupled_stream(p, x);
            assert!(rel_close(got, expected), "k={k}: {got} vs {expected}");
        }
    }

    #[test]
    fn tupled_combine_is_associative() {
        // The soundness condition for dropping the descending phase.
        let f = TupledVp::new(0.9);
        let a = (1.0, 0.9);
        let b = (2.0, 0.81);
        let c = (3.0, 0.9);
        let lhs = f.combine(f.combine(a, b), c);
        let rhs = f.combine(a, f.combine(b, c));
        assert!((lhs.0 - rhs.0).abs() < 1e-12);
        assert!((lhs.1 - rhs.1).abs() < 1e-12);
    }

    #[test]
    fn leaf_kernels_match_template_recursion() {
        let p = coeffs(128);
        let v = p.view();
        let (even, odd) = v.unzip().unwrap();
        for view in [&v, &even, &odd] {
            let f = VpFunction::new(0.93);
            let a = f.leaf_case(view);
            let b = jplf::compute_sequential(&f, view);
            assert!(rel_close(a, b), "vp: {a} vs {b}");
            let t = TupledVp::new(0.93);
            let (a0, a1) = t.leaf_case(view);
            let (b0, b1) = jplf::compute_sequential(&t, view);
            assert!(rel_close(a0, b0) && rel_close(a1, b1));
        }
    }

    #[test]
    fn all_routes_agree() {
        let p = coeffs(1 << 9);
        let x = 0.73;
        let h = horner(p.as_slice(), x);
        let a = eval_seq_stream(p.clone(), x);
        let b = eval_par_stream(p.clone(), x);
        let c = SequentialExecutor::new().execute(&VpFunction::new(x), &p.view());
        for (name, v) in [("seq_stream", a), ("par_stream", b), ("jplf", c)] {
            assert!(rel_close(v, h), "{name}: {v} vs {h}");
        }
    }
}
