//! Fast Fourier Transform over PowerLists (paper, Eq. 3).
//!
//! Cooley–Tukey has "a very simple PowerList representation":
//!
//! ```text
//! fft([a])    = [a]
//! fft(p ♮ q)  = (P + u×Q) | (P − u×Q)
//!    where P = fft(p), Q = fft(q), u = powers(p)
//! ```
//!
//! `powers(p) = (w⁰, w¹, …, wⁿ⁻¹)` with `w` the `2n`-th principal root of
//! unity, and `+`, `×` the extended element-wise operators — this is the
//! flagship function needing **both** deconstruction operators: the
//! input splits with `zip`, the output recombines with `tie`.
//!
//! Provided here:
//!
//! * [`dft_naive`] — the O(n²) definition, the correctness oracle;
//! * [`fft_seq`] — Eq. 3 as direct structural recursion;
//! * [`FftFunction`] — Eq. 3 as a JPLF [`PowerFunction`] (runs on every
//!   executor);
//! * [`fft_stream`] — Eq. 3 through the streams adaptation: a
//!   `ZipSpliterator`-driven collect whose combiner performs the
//!   butterfly;
//! * [`ifft`] — inverse transform via conjugation.

use crate::complex::Complex;
use jplf::{Decomp, PowerFunction};
use jstreams::{
    power_stream, Collector, Decomposition, OutputBuffer, PlacementBuf, PlacementSpec, Window,
    WindowRule,
};
use powerlist::{PowerArray, PowerList};
use std::sync::Arc;

/// The `powers` function of Eq. 3: `(w⁰, …, wⁿ⁻¹)` with `w` the `2n`-th
/// principal root of unity (sign convention: forward transform uses
/// `e^{-2πi/(2n)}`).
pub fn powers(n: usize, inverse: bool) -> Vec<Complex> {
    let sign = if inverse { 1.0 } else { -1.0 };
    let step = sign * std::f64::consts::PI / n as f64; // 2π / 2n
    (0..n).map(|k| Complex::cis(step * k as f64)).collect()
}

/// O(n²) discrete Fourier transform — the oracle.
pub fn dft_naive(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex::ZERO;
            for (j, &x) in input.iter().enumerate() {
                let angle = -2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                acc = acc + x * Complex::cis(angle);
            }
            acc
        })
        .collect()
}

fn butterfly(p_hat: Vec<Complex>, q_hat: Vec<Complex>, inverse: bool) -> Vec<Complex> {
    let n = p_hat.len();
    let u = powers(n, inverse);
    let mut out = Vec::with_capacity(2 * n);
    // (P + u×Q) | (P − u×Q)
    for i in 0..n {
        out.push(p_hat[i] + u[i] * q_hat[i]);
    }
    for i in 0..n {
        out.push(p_hat[i] - u[i] * q_hat[i]);
    }
    out
}

fn fft_rec(
    input: &[Complex],
    stride: usize,
    offset: usize,
    n: usize,
    inverse: bool,
) -> Vec<Complex> {
    if n == 1 {
        return vec![input[offset]];
    }
    // zip deconstruction: evens (p) and odds (q) of the current view.
    let p_hat = fft_rec(input, stride * 2, offset, n / 2, inverse);
    let q_hat = fft_rec(input, stride * 2, offset + stride, n / 2, inverse);
    butterfly(p_hat, q_hat, inverse)
}

/// Eq. 3 by direct structural recursion (sequential).
pub fn fft_seq(input: &PowerList<Complex>) -> PowerList<Complex> {
    let out = fft_rec(input.as_slice(), 1, 0, input.len(), false);
    PowerList::from_vec(out).expect("fft preserves length")
}

/// Inverse FFT: conjugate trick plus 1/n scaling; `ifft(fft(x)) = x`.
pub fn ifft(input: &PowerList<Complex>) -> PowerList<Complex> {
    let n = input.len();
    let out = fft_rec(input.as_slice(), 1, 0, n, true);
    PowerList::from_vec(out.into_iter().map(|z| z.scale(1.0 / n as f64)).collect())
        .expect("ifft preserves length")
}

/// Eq. 3 as a JPLF PowerFunction: zip decomposition, butterfly combine.
#[derive(Debug, Clone, Copy, Default)]
pub struct FftFunction;

impl PowerFunction for FftFunction {
    type Elem = Complex;
    type Out = PowerList<Complex>;

    fn decomposition(&self) -> Decomp {
        Decomp::Zip
    }

    fn basic_case(&self, a: &Complex) -> PowerList<Complex> {
        PowerList::singleton(*a)
    }

    fn create_left(&self) -> Self {
        FftFunction
    }

    fn create_right(&self) -> Self {
        FftFunction
    }

    /// The combining phase carries the real work: `u = powers(p)` is
    /// recomputed from the sub-result length (it depends only on the
    /// level), then the butterfly recombines with **tie**.
    fn combine(&self, p_hat: PowerList<Complex>, q_hat: PowerList<Complex>) -> PowerList<Complex> {
        let out = butterfly(p_hat.into_vec(), q_hat.into_vec(), false);
        PowerList::from_vec(out).expect("butterfly doubles length")
    }

    /// Leaf kernel: transform the materialised sub-list with the
    /// sequential FFT instead of singleton recursion.
    fn leaf_case(&self, view: &powerlist::PowerView<Complex>) -> PowerList<Complex> {
        let elems: Vec<Complex> = view.iter().copied().collect();
        let n = elems.len();
        PowerList::from_vec(fft_rec(&elems, 1, 0, n, false)).expect("fft preserves length")
    }
}

/// Collector running the FFT through the streams adaptation: the
/// accumulation container is the frequency-domain partial result, the
/// combiner the butterfly. The leaf phase runs the sequential FFT on the
/// leaf sub-list — the Section V observation that `forEachRemaining`
/// leaves can get a specialised sequential kernel.
pub struct FftCollector;

impl Collector<Complex> for FftCollector {
    type Acc = PowerArray<Complex>;
    type Out = PowerList<Complex>;

    fn supplier(&self) -> PowerArray<Complex> {
        PowerArray::new()
    }

    fn accumulate(&self, acc: &mut PowerArray<Complex>, item: Complex) {
        acc.push(item);
    }

    fn combine(
        &self,
        left: PowerArray<Complex>,
        right: PowerArray<Complex>,
    ) -> PowerArray<Complex> {
        PowerArray::from(butterfly(left.into_vec(), right.into_vec(), false))
    }

    /// Specialised leaf: the accumulated sub-list is itself a PowerList
    /// (a residue class of the input); transform it sequentially.
    fn leaf(&self, source: &mut dyn jstreams::ItemSource<Complex>) -> PowerArray<Complex> {
        let mut acc = self.supplier();
        source.for_each_remaining(&mut |x| acc.push(x));
        let n = acc.len();
        if n <= 1 {
            return acc;
        }
        PowerArray::from(fft_rec(acc.as_slice(), 1, 0, n, false))
    }

    fn finish(&self, acc: PowerArray<Complex>) -> PowerList<Complex> {
        acc.into_powerlist()
            .expect("fft preserves the shape invariant")
    }

    /// Zero-copy leaf: `fft_rec` already walks `(slice, stride, offset)`
    /// descriptors, so a borrowed residue class transforms in place —
    /// no materialisation of the leaf sub-list at all.
    fn leaf_slice(&self, items: &[Complex]) -> Option<PowerArray<Complex>> {
        self.leaf_strided(items, 1)
    }

    fn leaf_strided(&self, items: &[Complex], step: usize) -> Option<PowerArray<Complex>> {
        if items.is_empty() {
            return Some(PowerArray::new());
        }
        let n = (items.len() - 1) / step + 1;
        if n == 1 {
            let mut acc = PowerArray::new();
            acc.push(items[0]);
            return Some(acc);
        }
        Some(PowerArray::from(fft_rec(items, step, 0, n, false)))
    }

    /// Placement windows concatenate — the butterfly writes
    /// `(P + u×Q) | (P − u×Q)` over the two sub-spectra sitting
    /// side-by-side, so the combined result occupies exactly the
    /// parent's contiguous window.
    fn placement_spec(&self) -> Option<PlacementSpec> {
        Some(PlacementSpec {
            rule: WindowRule::Concat,
            gap: 0,
            unit: true,
        })
    }

    fn try_reserve(
        &self,
        slots: usize,
    ) -> Option<Arc<dyn OutputBuffer<Complex, PowerList<Complex>>>> {
        Some(Arc::new(FftPlacement {
            buf: PlacementBuf::new(slots),
        }))
    }
}

/// Destination-passing output for [`FftCollector`]: each leaf writes
/// the sub-spectrum of its residue class straight into its window, and
/// `combine` runs the butterfly **in place** over the parent window —
/// no intermediate `Vec` per tree level at all.
struct FftPlacement {
    buf: PlacementBuf<Complex>,
}

impl OutputBuffer<Complex, PowerList<Complex>> for FftPlacement {
    fn fill_run(&self, w: Window, items: &[Complex], step: usize) -> u64 {
        if items.is_empty() {
            return 0;
        }
        let n = (items.len() - 1) / step + 1;
        let hat = if n == 1 {
            vec![items[0]]
        } else {
            fft_rec(items, step, 0, n, false)
        };
        let mut writer = self.buf.writer(w);
        writer.push_run(&hat, 1);
        writer.count()
    }

    fn fill_with(&self, w: Window, drive: &mut dyn FnMut(&mut dyn FnMut(Complex))) -> u64 {
        let mut elems = Vec::with_capacity(w.len);
        drive(&mut |z| elems.push(z));
        let n = elems.len();
        let hat = if n <= 1 {
            elems
        } else {
            fft_rec(&elems, 1, 0, n, false)
        };
        let mut writer = self.buf.writer(w);
        writer.push_run(&hat, 1);
        writer.count()
    }

    fn combine(&self, parent: Window, left_slots: usize) {
        let h = left_slots;
        let u = powers(h, false);
        // SAFETY: the driver combines a node only after both children
        // returned, so the parent window is fully initialised and no
        // other thread can touch it (sibling windows are disjoint).
        unsafe {
            self.buf.with_initialized_mut(parent, &mut |w| {
                // (P + u×Q) | (P − u×Q), expression-identical to the
                // splice `butterfly` so both routes agree bit-for-bit.
                for i in 0..h {
                    let p = w[i];
                    let q = w[h + i];
                    w[i] = p + u[i] * q;
                    w[h + i] = p - u[i] * q;
                }
            });
        }
    }

    fn finish(&self) -> PowerList<Complex> {
        PowerList::from_vec(self.buf.finish_vec()).expect("fft preserves the shape invariant")
    }
}

/// FFT through the parallel streams adaptation.
pub fn fft_stream(input: PowerList<Complex>) -> PowerList<Complex> {
    power_stream(input, Decomposition::Zip).collect(FftCollector)
}

/// Convenience: transforms a real-valued signal.
pub fn fft_real(signal: &[f64]) -> PowerList<Complex> {
    let input = PowerList::from_vec(signal.iter().map(|&x| Complex::from_re(x)).collect())
        .expect("signal length must be a power of two");
    fft_seq(&input)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jplf::{Executor, ForkJoinExecutor, MpiExecutor, SequentialExecutor};
    use powerlist::tabulate;

    const EPS: f64 = 1e-7;

    fn signal(n: usize) -> PowerList<Complex> {
        tabulate(n, |i| {
            Complex::new(
                ((i * 13 + 5) % 23) as f64 - 11.0,
                ((i * 7) % 17) as f64 * 0.25,
            )
        })
        .unwrap()
    }

    fn assert_close(a: &[Complex], b: &[Complex]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(x.approx_eq(*y, EPS), "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn matches_naive_dft() {
        for k in 0..8 {
            let s = signal(1 << k);
            let expected = dft_naive(s.as_slice());
            let got = fft_seq(&s);
            assert_close(got.as_slice(), &expected);
        }
    }

    #[test]
    fn singleton_is_identity() {
        let s = PowerList::singleton(Complex::new(2.0, -3.0));
        assert_eq!(fft_seq(&s), s);
    }

    #[test]
    fn roundtrip_ifft() {
        let s = signal(128);
        let back = ifft(&fft_seq(&s));
        assert_close(back.as_slice(), s.as_slice());
    }

    #[test]
    fn impulse_gives_flat_spectrum() {
        let mut v = vec![Complex::ZERO; 8];
        v[0] = Complex::ONE;
        let s = PowerList::from_vec(v).unwrap();
        let out = fft_seq(&s);
        for z in out.iter() {
            assert!(z.approx_eq(Complex::ONE, EPS));
        }
    }

    #[test]
    fn constant_gives_impulse_spectrum() {
        let s = PowerList::repeat(Complex::ONE, 16).unwrap();
        let out = fft_seq(&s);
        assert!(out[0].approx_eq(Complex::from_re(16.0), EPS));
        for z in out.iter().skip(1) {
            assert!(z.approx_eq(Complex::ZERO, EPS), "{z}");
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let s = signal(64);
        let time: f64 = s.iter().map(|z| z.norm_sqr()).sum();
        let freq: f64 = fft_seq(&s).iter().map(|z| z.norm_sqr()).sum::<f64>() / 64.0;
        assert!((time - freq).abs() < 1e-6 * time.abs().max(1.0));
    }

    #[test]
    fn jplf_executors_agree() {
        let s = signal(256);
        let expected = fft_seq(&s);
        let v = s.view();
        let seq = SequentialExecutor::new().execute(&FftFunction, &v);
        assert_close(seq.as_slice(), expected.as_slice());
        let fj = ForkJoinExecutor::new(3, 16).execute(&FftFunction, &v);
        assert_close(fj.as_slice(), expected.as_slice());
        let mpi = MpiExecutor::new(4).execute(&FftFunction, &v);
        assert_close(mpi.as_slice(), expected.as_slice());
    }

    #[test]
    fn leaf_kernel_matches_template_recursion() {
        let s = signal(64);
        let v = s.view();
        let (even, odd) = v.unzip().unwrap();
        for view in [&v, &even, &odd] {
            let a = FftFunction.leaf_case(view);
            let b = jplf::compute_sequential(&FftFunction, view);
            assert_close(a.as_slice(), b.as_slice());
        }
    }

    #[test]
    fn stream_fft_agrees() {
        for k in [0usize, 1, 3, 6, 9] {
            let s = signal(1 << k);
            let expected = fft_seq(&s);
            let got = fft_stream(s);
            assert_close(got.as_slice(), expected.as_slice());
        }
    }

    /// The placement butterfly runs the same expressions over the same
    /// operands as the splice butterfly, so the two routes must agree
    /// **bit-for-bit**, not just within epsilon.
    #[test]
    fn placement_and_splice_spectra_are_bit_identical() {
        for k in [1usize, 4, 8] {
            let s = signal(1 << k);
            let splice = power_stream(s.clone(), Decomposition::Zip)
                .with_leaf_size(16)
                .with_placement(false)
                .collect(FftCollector);
            let placed = power_stream(s, Decomposition::Zip)
                .with_leaf_size(16)
                .collect(FftCollector);
            assert_eq!(placed.as_slice(), splice.as_slice());
        }
    }

    #[test]
    fn fft_real_wraps() {
        let out = fft_real(&[1.0, 0.0, 0.0, 0.0]);
        for z in out.iter() {
            assert!(z.approx_eq(Complex::ONE, EPS));
        }
    }

    #[test]
    fn linearity() {
        let a = signal(32);
        let b = tabulate(32, |i| Complex::new(i as f64, -(i as f64) / 3.0)).unwrap();
        let sum = powerlist::ops::add(&a, &b).unwrap();
        let lhs = fft_seq(&sum);
        let rhs = powerlist::ops::add(&fft_seq(&a), &fft_seq(&b)).unwrap();
        assert_close(lhs.as_slice(), rhs.as_slice());
    }
}
