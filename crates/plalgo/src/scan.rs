//! Prefix sums (scan) over PowerLists — Ladner–Fischer.
//!
//! The prefix-sum recursion on PowerLists (one of the functions the
//! paper's Section III lists as expressible in JPLF) uses the zip
//! deconstruction:
//!
//! ```text
//! ps([a])    = [a]
//! ps(p ♮ q)  = (shift(t) ⊕ p) ♮ t   where t = ps(p ⊕ q)
//! ```
//!
//! with `⊕` the extended operator and `shift` prepending the identity
//! and dropping the last element. This is the Ladner–Fischer circuit:
//! depth `O(log n)`, work `O(n)` per level.
//!
//! Provided: the structural recursion ([`scan_seq`]), a fork-join
//! parallel version parallelising the element-wise phases
//! ([`scan_par`]), and an exclusive-scan variant. All verified against a
//! plain running fold.

use forkjoin::ForkJoinPool;
use powerlist::{PowerList, Result};
use std::sync::Arc;

/// A shareable associative binary operator over `T`.
type ScanOp<T> = Arc<dyn Fn(&T, &T) -> T + Send + Sync>;

/// Inclusive scan by plain left fold — the specification.
pub fn scan_spec<T: Clone>(input: &[T], op: impl Fn(&T, &T) -> T) -> Vec<T> {
    let mut out = Vec::with_capacity(input.len());
    let mut acc: Option<T> = None;
    for x in input {
        let next = match &acc {
            None => x.clone(),
            Some(a) => op(a, x),
        };
        out.push(next.clone());
        acc = Some(next);
    }
    out
}

/// Inclusive scan via the PowerList recursion (sequential).
///
/// `identity` must satisfy `op(identity, x) = x`.
pub fn scan_seq<T>(
    input: &PowerList<T>,
    identity: T,
    op: impl Fn(&T, &T) -> T + Copy,
) -> PowerList<T>
where
    T: Clone,
{
    fn go<T: Clone>(v: Vec<T>, identity: &T, op: impl Fn(&T, &T) -> T + Copy) -> Vec<T> {
        let n = v.len();
        if n == 1 {
            return v;
        }
        // unzip: p = evens, q = odds
        let mut p = Vec::with_capacity(n / 2);
        let mut q = Vec::with_capacity(n / 2);
        for (i, x) in v.into_iter().enumerate() {
            if i % 2 == 0 {
                p.push(x);
            } else {
                q.push(x);
            }
        }
        // t = ps(p ⊕ q)
        let sums: Vec<T> = p.iter().zip(q.iter()).map(|(a, b)| op(a, b)).collect();
        let t = go(sums, identity, op);
        // evens of the result: shift(t) ⊕ p
        let mut out = Vec::with_capacity(n);
        for i in 0..n / 2 {
            let shifted = if i == 0 {
                identity.clone()
            } else {
                t[i - 1].clone()
            };
            out.push(op(&shifted, &p[i]));
            out.push(t[i].clone());
        }
        out
    }
    PowerList::from_vec(go(input.clone().into_vec(), &identity, op)).expect("scan preserves length")
}

/// Exclusive scan: result `i` is the fold of elements `0..i` (identity at
/// position 0).
pub fn scan_exclusive<T>(
    input: &PowerList<T>,
    identity: T,
    op: impl Fn(&T, &T) -> T + Copy,
) -> PowerList<T>
where
    T: Clone,
{
    let inc = scan_seq(input, identity.clone(), op);
    let mut v = inc.into_vec();
    v.pop();
    v.insert(0, identity);
    PowerList::from_vec(v).expect("shift preserves length")
}

/// Parallel inclusive scan: Blelloch two-phase (up-sweep / down-sweep)
/// over the fork-join pool, with sequential tiles of `grain` elements.
///
/// `op` must be associative; results equal [`scan_seq`] exactly for exact
/// types (integers) and up to reassociation error for floats.
pub fn scan_par<T>(
    pool: &ForkJoinPool,
    input: &PowerList<T>,
    identity: T,
    op: impl Fn(&T, &T) -> T + Send + Sync + 'static,
    grain: usize,
) -> Result<PowerList<T>>
where
    T: Clone + Send + Sync + 'static,
{
    let n = input.len();
    let grain = grain.max(1);
    let op = Arc::new(op);
    let data = Arc::new(input.clone().into_vec());

    // Tile layout: ceil(n / grain) tiles.
    let tiles = n.div_ceil(grain);
    if tiles <= 1 {
        return Ok(scan_seq(input, identity, |a, b| op(a, b)));
    }

    // Phase 1 (up-sweep): per-tile totals, in parallel.
    let totals: Vec<T> = {
        let data = Arc::clone(&data);
        let op = Arc::clone(&op);
        pool.install(move || {
            fn sweep<T: Clone + Send + Sync + 'static>(
                data: Arc<Vec<T>>,
                op: ScanOp<T>,
                lo_tile: usize,
                hi_tile: usize,
                grain: usize,
            ) -> Vec<T> {
                if hi_tile - lo_tile == 1 {
                    let lo = lo_tile * grain;
                    let hi = ((lo_tile + 1) * grain).min(data.len());
                    let mut acc = data[lo].clone();
                    for x in &data[lo + 1..hi] {
                        acc = op(&acc, x);
                    }
                    return vec![acc];
                }
                let mid = lo_tile + (hi_tile - lo_tile) / 2;
                let (d2, o2) = (Arc::clone(&data), Arc::clone(&op));
                let (mut l, mut r) = forkjoin::join(
                    move || sweep(data, op, lo_tile, mid, grain),
                    move || sweep(d2, o2, mid, hi_tile, grain),
                );
                l.append(&mut r);
                l
            }
            let op2: ScanOp<T> = op;
            sweep(data, op2, 0, tiles, grain)
        })
    };

    // Phase 2: exclusive scan of the tile totals (small, sequential).
    let mut offsets = Vec::with_capacity(tiles);
    let mut acc = identity.clone();
    for t in &totals {
        offsets.push(acc.clone());
        acc = op(&acc, t);
    }

    // Phase 3 (down-sweep): per-tile local scans seeded by the offsets.
    let offsets = Arc::new(offsets);
    let out: Vec<T> = {
        let data = Arc::clone(&data);
        let op2: ScanOp<T> = Arc::clone(&op) as _;
        let offsets = Arc::clone(&offsets);
        pool.install(move || {
            fn down<T: Clone + Send + Sync + 'static>(
                data: Arc<Vec<T>>,
                op: ScanOp<T>,
                offsets: Arc<Vec<T>>,
                lo_tile: usize,
                hi_tile: usize,
                grain: usize,
            ) -> Vec<T> {
                if hi_tile - lo_tile == 1 {
                    let lo = lo_tile * grain;
                    let hi = ((lo_tile + 1) * grain).min(data.len());
                    let mut acc = offsets[lo_tile].clone();
                    let mut out = Vec::with_capacity(hi - lo);
                    for x in &data[lo..hi] {
                        acc = op(&acc, x);
                        out.push(acc.clone());
                    }
                    return out;
                }
                let mid = lo_tile + (hi_tile - lo_tile) / 2;
                let (d2, o2, f2) = (Arc::clone(&data), Arc::clone(&op), Arc::clone(&offsets));
                let (mut l, mut r) = forkjoin::join(
                    move || down(data, op, offsets, lo_tile, mid, grain),
                    move || down(d2, o2, f2, mid, hi_tile, grain),
                );
                l.append(&mut r);
                l
            }
            down(data, op2, offsets, 0, tiles, grain)
        })
    };

    PowerList::from_vec(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerlist::tabulate;

    fn input(n: usize) -> PowerList<i64> {
        tabulate(n, |i| (i as i64 * 17 + 3) % 29 - 14).unwrap()
    }

    #[test]
    fn spec_scan_works() {
        assert_eq!(scan_spec(&[1, 2, 3, 4], |a, b| a + b), vec![1, 3, 6, 10]);
        assert_eq!(scan_spec(&[5], |a, b| a + b), vec![5]);
    }

    #[test]
    fn ladner_fischer_matches_spec() {
        for k in 0..10 {
            let p = input(1 << k);
            let expected = scan_spec(p.as_slice(), |a, b| a + b);
            let got = scan_seq(&p, 0, |a, b| a + b);
            assert_eq!(got.as_slice(), &expected[..], "k={k}");
        }
    }

    #[test]
    fn works_with_max_monoid() {
        let p = input(64);
        let expected = scan_spec(p.as_slice(), |a, b| *a.max(b));
        let got = scan_seq(&p, i64::MIN, |a, b| *a.max(b));
        assert_eq!(got.as_slice(), &expected[..]);
    }

    #[test]
    fn exclusive_scan_shifts() {
        let p = PowerList::from_vec(vec![1i64, 2, 3, 4]).unwrap();
        let ex = scan_exclusive(&p, 0, |a, b| a + b);
        assert_eq!(ex.as_slice(), &[0, 1, 3, 6]);
    }

    #[test]
    fn parallel_matches_sequential() {
        let pool = ForkJoinPool::new(3);
        for k in [0usize, 1, 4, 8, 11] {
            let p = input(1 << k);
            let expected = scan_seq(&p, 0, |a, b| a + b);
            for grain in [1usize, 3, 16, 100] {
                let got = scan_par(&pool, &p, 0, |a: &i64, b: &i64| a + b, grain).unwrap();
                assert_eq!(got, expected, "k={k} grain={grain}");
            }
        }
    }

    #[test]
    fn noncommutative_associative_op() {
        // 2x2 integer matrix multiplication: associative, not commutative.
        type M = [i64; 4];
        fn mul(a: &M, b: &M) -> M {
            [
                a[0] * b[0] + a[1] * b[2],
                a[0] * b[1] + a[1] * b[3],
                a[2] * b[0] + a[3] * b[2],
                a[2] * b[1] + a[3] * b[3],
            ]
        }
        let id: M = [1, 0, 0, 1];
        let p = tabulate(32, |i| {
            let x = (i % 3) as i64 - 1;
            [1, x, 0, 1]
        })
        .unwrap();
        let expected = scan_spec(p.as_slice(), mul);
        let got = scan_seq(&p, id, mul);
        assert_eq!(got.as_slice(), &expected[..]);
        let pool = ForkJoinPool::new(2);
        let par = scan_par(&pool, &p, id, mul, 4).unwrap();
        assert_eq!(par.as_slice(), &expected[..]);
    }

    #[test]
    fn singleton_scan() {
        let p = PowerList::singleton(7i64);
        assert_eq!(scan_seq(&p, 0, |a, b| a + b).as_slice(), &[7]);
    }
}
