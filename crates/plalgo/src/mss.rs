//! Maximum segment sum — the classic list homomorphism, as a PowerList
//! function.
//!
//! The paper's related-work section points at list homomorphisms
//! ("Parallel Programming with List Homomorphisms", Cole) as the
//! divide-and-conquer functions that decompose into map/reduce; MSS is
//! *the* canonical example: it is not a homomorphism itself, but its
//! tupled form — `(best, best_prefix, best_suffix, total)` — is, which
//! makes it a perfect PowerList tie-reduction and a natural stream
//! collect. Both routes are provided and tested against the brute-force
//! O(n²) specification and Kadane's O(n) algorithm.

use jplf::{Decomp, PowerFunction};
use jstreams::Collector;
use powerlist::PowerList;

/// The homomorphic state: all four quantities needed to merge two
/// adjacent segments' answers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MssState {
    /// Best segment sum anywhere inside this block (empty segment
    /// allowed: never below 0... see note in [`mss`] — we use the
    /// "non-empty segments" convention).
    pub best: i64,
    /// Best sum of a prefix of the block.
    pub prefix: i64,
    /// Best sum of a suffix of the block.
    pub suffix: i64,
    /// Total of the block.
    pub total: i64,
}

impl MssState {
    /// State of a single element.
    pub fn leaf(v: i64) -> MssState {
        MssState {
            best: v,
            prefix: v,
            suffix: v,
            total: v,
        }
    }

    /// Merges two adjacent blocks (left precedes right).
    pub fn merge(l: MssState, r: MssState) -> MssState {
        MssState {
            best: l.best.max(r.best).max(l.suffix + r.prefix),
            prefix: l.prefix.max(l.total + r.prefix),
            suffix: r.suffix.max(r.total + l.suffix),
            total: l.total + r.total,
        }
    }
}

/// Brute-force O(n²) specification: maximum over all non-empty
/// contiguous segments.
pub fn mss_spec(v: &[i64]) -> i64 {
    let mut best = i64::MIN;
    for i in 0..v.len() {
        let mut sum = 0;
        for &x in &v[i..] {
            sum += x;
            best = best.max(sum);
        }
    }
    best
}

/// Kadane's O(n) algorithm — the sequential production answer.
pub fn mss_kadane(v: &[i64]) -> i64 {
    let mut best = i64::MIN;
    let mut cur = 0i64;
    for &x in v {
        cur = (cur + x).max(x);
        best = best.max(cur);
    }
    best
}

/// MSS as a JPLF PowerFunction: tie decomposition, homomorphic merge.
#[derive(Debug, Clone, Copy, Default)]
pub struct MssFunction;

impl PowerFunction for MssFunction {
    type Elem = i64;
    type Out = MssState;

    fn decomposition(&self) -> Decomp {
        Decomp::Tie
    }

    fn basic_case(&self, v: &i64) -> MssState {
        MssState::leaf(*v)
    }

    fn create_left(&self) -> Self {
        MssFunction
    }

    fn create_right(&self) -> Self {
        MssFunction
    }

    fn combine(&self, l: MssState, r: MssState) -> MssState {
        MssState::merge(l, r)
    }

    /// Leaf kernel: linear left-to-right state extension.
    fn leaf_case(&self, view: &powerlist::PowerView<i64>) -> MssState {
        let mut it = view.iter();
        let mut acc = MssState::leaf(*it.next().expect("views are non-empty"));
        for &v in it {
            acc = MssState::merge(acc, MssState::leaf(v));
        }
        acc
    }
}

/// MSS as a stream collector (tie-compatible: the accumulator *is* the
/// left-to-right extension of the state, the combiner the homomorphic
/// merge).
pub struct MssCollector;

impl Collector<i64> for MssCollector {
    type Acc = Option<MssState>;
    type Out = i64;

    fn supplier(&self) -> Option<MssState> {
        None
    }

    fn accumulate(&self, acc: &mut Option<MssState>, item: i64) {
        let leaf = MssState::leaf(item);
        *acc = Some(match acc.take() {
            None => leaf,
            Some(s) => MssState::merge(s, leaf),
        });
    }

    fn combine(&self, left: Option<MssState>, right: Option<MssState>) -> Option<MssState> {
        match (left, right) {
            (None, r) => r,
            (l, None) => l,
            (Some(l), Some(r)) => Some(MssState::merge(l, r)),
        }
    }

    fn finish(&self, acc: Option<MssState>) -> i64 {
        acc.expect("MSS of a non-empty PowerList").best
    }

    /// Zero-copy leaf: extend the homomorphic state directly over the
    /// borrowed run.
    fn leaf_slice(&self, items: &[i64]) -> Option<Option<MssState>> {
        self.leaf_strided(items, 1)
    }

    fn leaf_strided(&self, items: &[i64], step: usize) -> Option<Option<MssState>> {
        let mut acc: Option<MssState> = None;
        for &v in items.iter().step_by(step) {
            let leaf = MssState::leaf(v);
            acc = Some(match acc {
                None => leaf,
                Some(s) => MssState::merge(s, leaf),
            });
        }
        Some(acc)
    }
}

/// MSS through the parallel streams adaptation.
pub fn mss_stream(input: PowerList<i64>) -> i64 {
    jstreams::power_stream(input, jstreams::Decomposition::Tie).collect(MssCollector)
}

/// MSS through a JPLF executor.
pub fn mss(input: &PowerList<i64>) -> i64 {
    use jplf::Executor;
    jplf::SequentialExecutor::new()
        .execute(&MssFunction, &input.clone().view())
        .best
}

#[cfg(test)]
mod tests {
    use super::*;
    use jplf::{Executor, ForkJoinExecutor, MpiExecutor, SequentialExecutor};
    use powerlist::tabulate;

    fn workload(n: usize, seed: i64) -> PowerList<i64> {
        tabulate(n, |i| ((i as i64 * 37 + seed) % 21) - 10).unwrap()
    }

    #[test]
    fn hand_examples() {
        assert_eq!(mss_spec(&[-2, 1, -3, 4, -1, 2, 1, -5]), 6); // [4,-1,2,1]
        assert_eq!(mss_kadane(&[-2, 1, -3, 4, -1, 2, 1, -5]), 6);
        assert_eq!(mss_spec(&[-3, -1, -2, -4]), -1); // all negative
        assert_eq!(mss_kadane(&[-3, -1, -2, -4]), -1);
        assert_eq!(mss_spec(&[5]), 5);
    }

    #[test]
    fn kadane_matches_spec() {
        for seed in 0..20 {
            let p = workload(64, seed);
            assert_eq!(
                mss_kadane(p.as_slice()),
                mss_spec(p.as_slice()),
                "seed={seed}"
            );
        }
    }

    #[test]
    fn powerfunction_matches_kadane() {
        for k in 0..9 {
            let p = workload(1 << k, 7);
            assert_eq!(mss(&p), mss_kadane(p.as_slice()), "k={k}");
        }
    }

    #[test]
    fn all_executors_agree() {
        let p = workload(512, 3);
        let expected = MssState {
            best: mss_kadane(p.as_slice()),
            ..SequentialExecutor::new().execute(&MssFunction, &p.clone().view())
        };
        let v = p.view();
        assert_eq!(
            SequentialExecutor::new().execute(&MssFunction, &v),
            expected
        );
        assert_eq!(
            ForkJoinExecutor::new(3, 16).execute(&MssFunction, &v),
            expected
        );
        assert_eq!(MpiExecutor::new(4).execute(&MssFunction, &v), expected);
    }

    #[test]
    fn stream_collect_matches() {
        for k in [0usize, 1, 4, 8, 10] {
            let p = workload(1 << k, 11);
            assert_eq!(mss_stream(p.clone()), mss_kadane(p.as_slice()), "k={k}");
        }
    }

    #[test]
    fn merge_components_are_consistent() {
        // total is the sum, prefix/suffix bracket best.
        let p = workload(128, 5);
        let s = SequentialExecutor::new().execute(&MssFunction, &p.clone().view());
        assert_eq!(s.total, p.iter().sum::<i64>());
        assert!(s.best >= s.prefix && s.best >= s.suffix);
        assert!(s.prefix >= *p.as_slice().first().unwrap().min(&s.prefix));
    }

    #[test]
    fn all_positive_is_total() {
        let p = tabulate(32, |i| i as i64 + 1).unwrap();
        assert_eq!(mss(&p), p.iter().sum::<i64>());
    }
}
