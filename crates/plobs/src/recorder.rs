//! The standard sink: a lock-cheap, per-thread-sharded recorder.
//!
//! [`RunRecorder::record`] is called from pool workers, MPI-sim rank
//! threads and the driver thread concurrently. To keep the record path
//! cheap it never takes a lock in steady state: each thread owns one
//! `Shard` of relaxed atomic counters, found through a thread-local
//! cache keyed by the recorder's id. The shard list's mutex is touched
//! only the first time a given thread records into a given recorder.
//! [`RunRecorder::finish`] merges all shards into a [`RunReport`].

use crate::event::{CancelReason, Event, FallbackReason, LeafRoute, StealSource, TuneOutcome};
use crate::report::{RankStats, RouteStats, RunReport, WorkerStats};
use crate::EventSink;
use parking_lot::Mutex;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

/// Split-depth histogram capacity; a power-of-two input of length
/// `2^d` produces depths `0..d`, so 64 covers anything addressable.
/// Deeper (or wider) indices fold into the last slot.
const MAX_DEPTH: usize = 64;
/// Per-worker slot capacity; workers beyond this fold into the last slot.
const MAX_WORKERS: usize = 64;
/// Per-rank slot capacity; ranks beyond this fold into the last slot.
const MAX_RANKS: usize = 64;

fn slot(index: u32, cap: usize) -> usize {
    (index as usize).min(cap - 1)
}

fn zeroed<const N: usize>() -> [AtomicU64; N] {
    std::array::from_fn(|_| AtomicU64::new(0))
}

/// One thread's private block of counters. All relaxed: the merge in
/// [`RunRecorder::finish`] happens after the recorded section's joins,
/// which provide the necessary happens-before edges.
struct Shard {
    splits: AtomicU64,
    splits_adaptive: AtomicU64,
    split_depths: [AtomicU64; MAX_DEPTH],
    descend_ns: AtomicU64,
    // Indexed by `route_index` (6 routes).
    route_leaves: [AtomicU64; 6],
    route_items: [AtomicU64; 6],
    leaf_ns: AtomicU64,
    combines: AtomicU64,
    combines_placement: AtomicU64,
    ascend_ns: AtomicU64,
    executed: [AtomicU64; MAX_WORKERS],
    injector_steals: [AtomicU64; MAX_WORKERS],
    peer_steals: [AtomicU64; MAX_WORKERS],
    parks: [AtomicU64; MAX_WORKERS],
    joins: AtomicU64,
    joins_stolen: AtomicU64,
    lock_acquisitions: AtomicU64,
    lock_contended: AtomicU64,
    mpi_sends: [AtomicU64; MAX_RANKS],
    mpi_send_bytes: [AtomicU64; MAX_RANKS],
    mpi_recvs: [AtomicU64; MAX_RANKS],
    mpi_recv_bytes: [AtomicU64; MAX_RANKS],
    // Indexed by `cancel_index` (4 reasons).
    cancels: [AtomicU64; 4],
    // Indexed by `fallback_index` (2 reasons).
    fallbacks: [AtomicU64; 2],
    // Indexed by `tune_index` (3 outcomes).
    tunes: [AtomicU64; 3],
    early_exits: AtomicU64,
    leaves_pruned: AtomicU64,
}

impl Shard {
    fn new() -> Self {
        Shard {
            splits: AtomicU64::new(0),
            splits_adaptive: AtomicU64::new(0),
            split_depths: zeroed(),
            descend_ns: AtomicU64::new(0),
            route_leaves: zeroed(),
            route_items: zeroed(),
            leaf_ns: AtomicU64::new(0),
            combines: AtomicU64::new(0),
            combines_placement: AtomicU64::new(0),
            ascend_ns: AtomicU64::new(0),
            executed: zeroed(),
            injector_steals: zeroed(),
            peer_steals: zeroed(),
            parks: zeroed(),
            joins: AtomicU64::new(0),
            joins_stolen: AtomicU64::new(0),
            lock_acquisitions: AtomicU64::new(0),
            lock_contended: AtomicU64::new(0),
            mpi_sends: zeroed(),
            mpi_send_bytes: zeroed(),
            mpi_recvs: zeroed(),
            mpi_recv_bytes: zeroed(),
            cancels: zeroed(),
            fallbacks: zeroed(),
            tunes: zeroed(),
            early_exits: AtomicU64::new(0),
            leaves_pruned: AtomicU64::new(0),
        }
    }

    fn record(&self, event: &Event) {
        match *event {
            Event::Split { depth, adaptive } => {
                self.splits.fetch_add(1, Relaxed);
                if adaptive {
                    self.splits_adaptive.fetch_add(1, Relaxed);
                }
                self.split_depths[slot(depth, MAX_DEPTH)].fetch_add(1, Relaxed);
            }
            Event::DescendNs { ns } => {
                self.descend_ns.fetch_add(ns, Relaxed);
            }
            Event::Leaf { route, items, ns } => {
                let r = route_index(route);
                self.route_leaves[r].fetch_add(1, Relaxed);
                self.route_items[r].fetch_add(items, Relaxed);
                self.leaf_ns.fetch_add(ns, Relaxed);
            }
            Event::Combine { ns, placement, .. } => {
                self.combines.fetch_add(1, Relaxed);
                if placement {
                    self.combines_placement.fetch_add(1, Relaxed);
                }
                self.ascend_ns.fetch_add(ns, Relaxed);
            }
            Event::PoolExecute { worker } => {
                self.executed[slot(worker, MAX_WORKERS)].fetch_add(1, Relaxed);
            }
            Event::PoolSteal { worker, source } => {
                let w = slot(worker, MAX_WORKERS);
                match source {
                    StealSource::Injector => self.injector_steals[w].fetch_add(1, Relaxed),
                    StealSource::Peer => self.peer_steals[w].fetch_add(1, Relaxed),
                };
            }
            Event::PoolPark { worker } => {
                self.parks[slot(worker, MAX_WORKERS)].fetch_add(1, Relaxed);
            }
            Event::PoolJoin { stolen } => {
                self.joins.fetch_add(1, Relaxed);
                if stolen {
                    self.joins_stolen.fetch_add(1, Relaxed);
                }
            }
            Event::SharedStateLock { contended } => {
                self.lock_acquisitions.fetch_add(1, Relaxed);
                if contended {
                    self.lock_contended.fetch_add(1, Relaxed);
                }
            }
            Event::Cancel { reason } => {
                self.cancels[cancel_index(reason)].fetch_add(1, Relaxed);
            }
            Event::EarlyExit { leaves_pruned } => {
                self.early_exits.fetch_add(1, Relaxed);
                self.leaves_pruned.fetch_add(leaves_pruned, Relaxed);
            }
            Event::Fallback { reason } => {
                self.fallbacks[fallback_index(reason)].fetch_add(1, Relaxed);
            }
            Event::Tune { outcome } => {
                self.tunes[tune_index(outcome)].fetch_add(1, Relaxed);
            }
            Event::MpiSend { from, to, bytes } => {
                let f = slot(from, MAX_RANKS);
                let t = slot(to, MAX_RANKS);
                self.mpi_sends[f].fetch_add(1, Relaxed);
                self.mpi_send_bytes[f].fetch_add(bytes, Relaxed);
                self.mpi_recvs[t].fetch_add(1, Relaxed);
                self.mpi_recv_bytes[t].fetch_add(bytes, Relaxed);
            }
        }
    }
}

fn route_index(route: LeafRoute) -> usize {
    match route {
        LeafRoute::ZeroCopySlice => 0,
        LeafRoute::ZeroCopyStrided => 1,
        LeafRoute::FusedBorrow => 2,
        LeafRoute::CloningDrain => 3,
        LeafRoute::Template => 4,
        LeafRoute::Placement => 5,
    }
}

fn cancel_index(reason: CancelReason) -> usize {
    match reason {
        CancelReason::Panic => 0,
        CancelReason::User => 1,
        CancelReason::Deadline => 2,
        CancelReason::Found => 3,
    }
}

fn fallback_index(reason: FallbackReason) -> usize {
    match reason {
        FallbackReason::PoolSaturated => 0,
        FallbackReason::SubmitFailed => 1,
    }
}

fn tune_index(outcome: TuneOutcome) -> usize {
    match outcome {
        TuneOutcome::Hit => 0,
        TuneOutcome::Miss => 1,
        TuneOutcome::Calibrate => 2,
    }
}

static NEXT_RECORDER_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    // (recorder id, this thread's shard of that recorder). One entry is
    // enough: a thread records into one recorder at a time in practice,
    // and a miss just re-registers through the mutex.
    static CACHED_SHARD: RefCell<Option<(u64, Arc<Shard>)>> = const { RefCell::new(None) };
}

/// The standard [`EventSink`]: per-thread shards of relaxed atomic
/// counters, merged on [`finish`](RunRecorder::finish).
pub struct RunRecorder {
    id: u64,
    shards: Mutex<Vec<Arc<Shard>>>,
}

impl Default for RunRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl RunRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        RunRecorder {
            id: NEXT_RECORDER_ID.fetch_add(1, Relaxed),
            shards: Mutex::new(Vec::new()),
        }
    }

    fn shard(&self) -> Arc<Shard> {
        CACHED_SHARD.with(|cache| {
            let mut cache = cache.borrow_mut();
            match cache.as_ref() {
                Some((id, shard)) if *id == self.id => Arc::clone(shard),
                _ => {
                    let shard = Arc::new(Shard::new());
                    self.shards.lock().push(Arc::clone(&shard));
                    *cache = Some((self.id, Arc::clone(&shard)));
                    shard
                }
            }
        })
    }

    /// Merges every thread's shard into one [`RunReport`]. The
    /// recorder stays usable; later events accumulate on top.
    pub fn finish(&self) -> RunReport {
        let shards = self.shards.lock();
        let mut report = RunReport::default();
        let mut split_depths = [0u64; MAX_DEPTH];
        let mut executed = [0u64; MAX_WORKERS];
        let mut injector_steals = [0u64; MAX_WORKERS];
        let mut peer_steals = [0u64; MAX_WORKERS];
        let mut parks = [0u64; MAX_WORKERS];
        let mut sends = [0u64; MAX_RANKS];
        let mut send_bytes = [0u64; MAX_RANKS];
        let mut recvs = [0u64; MAX_RANKS];
        let mut recv_bytes = [0u64; MAX_RANKS];
        let mut routes = [RouteStats::default(); 6];

        for shard in shards.iter() {
            report.splits += shard.splits.load(Relaxed);
            report.cancels_panic += shard.cancels[0].load(Relaxed);
            report.cancels_user += shard.cancels[1].load(Relaxed);
            report.cancels_deadline += shard.cancels[2].load(Relaxed);
            report.cancels_found += shard.cancels[3].load(Relaxed);
            report.early_exits += shard.early_exits.load(Relaxed);
            report.leaves_pruned += shard.leaves_pruned.load(Relaxed);
            report.fallbacks_saturated += shard.fallbacks[0].load(Relaxed);
            report.fallbacks_submit += shard.fallbacks[1].load(Relaxed);
            report.tune_hits += shard.tunes[0].load(Relaxed);
            report.tune_misses += shard.tunes[1].load(Relaxed);
            report.tune_calibrations += shard.tunes[2].load(Relaxed);
            report.splits_adaptive += shard.splits_adaptive.load(Relaxed);
            report.descend_ns += shard.descend_ns.load(Relaxed);
            report.leaf_ns += shard.leaf_ns.load(Relaxed);
            report.combines += shard.combines.load(Relaxed);
            report.combines_placement += shard.combines_placement.load(Relaxed);
            report.ascend_ns += shard.ascend_ns.load(Relaxed);
            report.joins += shard.joins.load(Relaxed);
            report.joins_stolen += shard.joins_stolen.load(Relaxed);
            report.lock_acquisitions += shard.lock_acquisitions.load(Relaxed);
            report.lock_contended += shard.lock_contended.load(Relaxed);
            for (acc, src) in split_depths.iter_mut().zip(&shard.split_depths) {
                *acc += src.load(Relaxed);
            }
            for (acc, src) in routes.iter_mut().zip(shard.route_leaves.iter()) {
                acc.leaves += src.load(Relaxed);
            }
            for (acc, src) in routes.iter_mut().zip(shard.route_items.iter()) {
                acc.items += src.load(Relaxed);
            }
            for (acc, src) in executed.iter_mut().zip(&shard.executed) {
                *acc += src.load(Relaxed);
            }
            for (acc, src) in injector_steals.iter_mut().zip(&shard.injector_steals) {
                *acc += src.load(Relaxed);
            }
            for (acc, src) in peer_steals.iter_mut().zip(&shard.peer_steals) {
                *acc += src.load(Relaxed);
            }
            for (acc, src) in parks.iter_mut().zip(&shard.parks) {
                *acc += src.load(Relaxed);
            }
            for (acc, src) in sends.iter_mut().zip(&shard.mpi_sends) {
                *acc += src.load(Relaxed);
            }
            for (acc, src) in send_bytes.iter_mut().zip(&shard.mpi_send_bytes) {
                *acc += src.load(Relaxed);
            }
            for (acc, src) in recvs.iter_mut().zip(&shard.mpi_recvs) {
                *acc += src.load(Relaxed);
            }
            for (acc, src) in recv_bytes.iter_mut().zip(&shard.mpi_recv_bytes) {
                *acc += src.load(Relaxed);
            }
        }

        report.split_depths = trimmed(&split_depths);
        report.routes.zero_copy_slice = routes[0];
        report.routes.zero_copy_strided = routes[1];
        report.routes.fused_borrow = routes[2];
        report.routes.cloning_drain = routes[3];
        report.routes.template = routes[4];
        report.routes.placement = routes[5];
        report.executed = executed.iter().sum();

        let used_workers = last_active(&[&executed, &injector_steals, &peer_steals, &parks]);
        report.per_worker = (0..used_workers)
            .map(|w| WorkerStats {
                worker: w as u32,
                executed: executed[w],
                injector_steals: injector_steals[w],
                peer_steals: peer_steals[w],
                parks: parks[w],
            })
            .collect();

        let used_ranks = last_active(&[&sends, &recvs]);
        report.per_rank = (0..used_ranks)
            .map(|r| RankStats {
                rank: r as u32,
                sends: sends[r],
                send_bytes: send_bytes[r],
                recvs: recvs[r],
                recv_bytes: recv_bytes[r],
            })
            .collect();

        report
    }
}

impl EventSink for RunRecorder {
    fn record(&self, event: &Event) {
        self.shard().record(event);
    }
}

/// Index one past the highest slot that is nonzero in any of `columns`.
fn last_active(columns: &[&[u64]]) -> usize {
    columns
        .iter()
        .map(|col| col.iter().rposition(|&v| v != 0).map_or(0, |i| i + 1))
        .max()
        .unwrap_or(0)
}

fn trimmed(hist: &[u64]) -> Vec<u64> {
    let len = hist.iter().rposition(|&v| v != 0).map_or(0, |i| i + 1);
    hist[..len].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_merge_across_threads() {
        let rec = Arc::new(RunRecorder::new());
        let hs: Vec<_> = (0..3)
            .map(|w| {
                let rec = Arc::clone(&rec);
                std::thread::spawn(move || {
                    for _ in 0..5 {
                        rec.record(&Event::PoolExecute { worker: w });
                        rec.record(&Event::PoolSteal {
                            worker: w,
                            source: StealSource::Peer,
                        });
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        let report = rec.finish();
        assert_eq!(report.executed, 15);
        assert_eq!(report.per_worker.len(), 3);
        for (w, stats) in report.per_worker.iter().enumerate() {
            assert_eq!(stats.worker, w as u32);
            assert_eq!(stats.executed, 5);
            assert_eq!(stats.peer_steals, 5);
            assert_eq!(stats.injector_steals, 0);
        }
    }

    #[test]
    fn depth_histogram_is_trimmed() {
        let rec = RunRecorder::new();
        rec.record(&Event::Split {
            depth: 0,
            adaptive: false,
        });
        rec.record(&Event::Split {
            depth: 2,
            adaptive: true,
        });
        rec.record(&Event::Split {
            depth: 2,
            adaptive: true,
        });
        let report = rec.finish();
        assert_eq!(report.splits, 3);
        assert_eq!(report.splits_adaptive, 2);
        assert_eq!(report.split_depths, vec![1, 0, 2]);
        assert_eq!(report.max_split_depth(), 2);
    }

    #[test]
    fn out_of_range_indices_fold_into_last_slot() {
        let rec = RunRecorder::new();
        rec.record(&Event::Split {
            depth: 9999,
            adaptive: false,
        });
        rec.record(&Event::PoolExecute { worker: 9999 });
        let report = rec.finish();
        assert_eq!(report.splits, 1);
        assert_eq!(report.split_depths.len(), MAX_DEPTH);
        assert_eq!(report.per_worker.len(), MAX_WORKERS);
        assert_eq!(report.executed, 1);
    }

    #[test]
    fn mpi_sends_count_both_sides() {
        let rec = RunRecorder::new();
        rec.record(&Event::MpiSend {
            from: 0,
            to: 1,
            bytes: 16,
        });
        rec.record(&Event::MpiSend {
            from: 1,
            to: 0,
            bytes: 8,
        });
        let report = rec.finish();
        assert_eq!(report.per_rank.len(), 2);
        assert_eq!(report.per_rank[0].sends, 1);
        assert_eq!(report.per_rank[0].send_bytes, 16);
        assert_eq!(report.per_rank[0].recvs, 1);
        assert_eq!(report.per_rank[0].recv_bytes, 8);
        assert_eq!(report.per_rank[1].sends, 1);
        assert_eq!(report.per_rank[1].recv_bytes, 16);
    }

    #[test]
    fn cancels_and_fallbacks_counted_by_reason() {
        let rec = RunRecorder::new();
        rec.record(&Event::Cancel {
            reason: CancelReason::Panic,
        });
        rec.record(&Event::Cancel {
            reason: CancelReason::Panic,
        });
        rec.record(&Event::Cancel {
            reason: CancelReason::Deadline,
        });
        rec.record(&Event::Fallback {
            reason: FallbackReason::PoolSaturated,
        });
        let report = rec.finish();
        assert_eq!(report.cancels_panic, 2);
        assert_eq!(report.cancels_user, 0);
        assert_eq!(report.cancels_deadline, 1);
        assert_eq!(report.cancels(), 3);
        assert_eq!(report.fallbacks_saturated, 1);
        assert_eq!(report.fallbacks(), 1);
    }

    #[test]
    fn early_exits_counted_with_found_cancels() {
        let rec = RunRecorder::new();
        rec.record(&Event::Cancel {
            reason: CancelReason::Found,
        });
        rec.record(&Event::EarlyExit { leaves_pruned: 1 });
        rec.record(&Event::EarlyExit { leaves_pruned: 3 });
        let report = rec.finish();
        assert_eq!(report.cancels_found, 1);
        assert_eq!(report.cancels(), 1);
        assert_eq!(report.early_exits, 2);
        assert_eq!(report.leaves_pruned, 4);
    }

    #[test]
    fn tunes_counted_by_outcome() {
        let rec = RunRecorder::new();
        rec.record(&Event::Tune {
            outcome: TuneOutcome::Calibrate,
        });
        rec.record(&Event::Tune {
            outcome: TuneOutcome::Hit,
        });
        rec.record(&Event::Tune {
            outcome: TuneOutcome::Hit,
        });
        rec.record(&Event::Tune {
            outcome: TuneOutcome::Miss,
        });
        let report = rec.finish();
        assert_eq!(report.tune_hits, 2);
        assert_eq!(report.tune_misses, 1);
        assert_eq!(report.tune_calibrations, 1);
        assert_eq!(report.tunes(), 4);
    }

    #[test]
    fn finish_is_cumulative_and_reusable() {
        let rec = RunRecorder::new();
        rec.record(&Event::PoolJoin { stolen: true });
        assert_eq!(rec.finish().joins, 1);
        rec.record(&Event::PoolJoin { stolen: false });
        let report = rec.finish();
        assert_eq!(report.joins, 2);
        assert_eq!(report.joins_stolen, 1);
    }
}
