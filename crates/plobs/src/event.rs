//! The structured event vocabulary shared by every instrumented layer.
//!
//! Each variant of [`Event`] corresponds to one occurrence the paper's
//! evaluation cares about: tree structure (`Split`/`Combine`), leaf
//! dispatch ([`LeafRoute`]), scheduler behaviour (`Pool*`), shared-state
//! contention, and MPI-sim traffic. Events are small `Copy` values so
//! emission never allocates.

/// Which leaf kernel the collect driver dispatched to for one leaf.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LeafRoute {
    /// `Collector::leaf_slice` over a contiguous borrowed run.
    ZeroCopySlice,
    /// `Collector::leaf_strided` over a borrowed strided run.
    ZeroCopyStrided,
    /// A fused adapter chain (map/filter/inspect stages) driven
    /// push-style over the *source's* borrowed run into the collector's
    /// accumulator — zero-copy traversal through adapters.
    FusedBorrow,
    /// The generic fallback: items cloned out one by one via
    /// `try_advance` and fed to `accumulate`.
    CloningDrain,
    /// A leaf computed by a template/executor leaf case (JPLF) rather
    /// than a streams collector kernel.
    Template,
    /// A destination-passing leaf: the leaf wrote its results straight
    /// into its `(base, step, len)` window of the root-allocated output
    /// buffer, so the ancestors' combines are no-op window merges.
    Placement,
}

impl LeafRoute {
    /// Stable lowercase name, used as the JSON key for the route.
    pub fn name(self) -> &'static str {
        match self {
            LeafRoute::ZeroCopySlice => "zero_copy_slice",
            LeafRoute::ZeroCopyStrided => "zero_copy_strided",
            LeafRoute::FusedBorrow => "fused_borrow",
            LeafRoute::CloningDrain => "cloning_drain",
            LeafRoute::Template => "template",
            LeafRoute::Placement => "placement",
        }
    }
}

/// Why an execution session was cancelled.
///
/// Carried by [`Event::Cancel`] and stored inside a fork-join
/// `CancelToken`; first cancellation wins, so every pruned subtree of one
/// run reports the same reason.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CancelReason {
    /// A sibling task panicked; the failure tripped the per-collect token
    /// so the rest of the tree short-circuits.
    Panic,
    /// The caller cancelled through its own token.
    User,
    /// The session's deadline expired.
    Deadline,
    /// A short-circuiting search terminal found its answer; the search
    /// driver tripped its internal token so every sibling subtree prunes
    /// at its next checkpoint. Success, not failure — search drivers
    /// intercept this reason instead of surfacing it as an error.
    Found,
}

impl CancelReason {
    /// Stable lowercase name, used as the JSON key for the reason.
    pub fn name(self) -> &'static str {
        match self {
            CancelReason::Panic => "panic",
            CancelReason::User => "user",
            CancelReason::Deadline => "deadline",
            CancelReason::Found => "found",
        }
    }
}

/// Why a parallel driver degraded to the sequential route.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FallbackReason {
    /// The pool's queued backlog exceeded the configured saturation
    /// threshold.
    PoolSaturated,
    /// Submission failed (the pool was shut down).
    SubmitFailed,
}

impl FallbackReason {
    /// Stable lowercase name, used as the JSON key for the reason.
    pub fn name(self) -> &'static str {
        match self {
            FallbackReason::PoolSaturated => "pool_saturated",
            FallbackReason::SubmitFailed => "submit_failed",
        }
    }
}

/// How the plan cache served one tuned execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TuneOutcome {
    /// The pipeline's fingerprint was found in the plan cache; the
    /// cached split policy was used with no measurement overhead.
    Hit,
    /// The fingerprint was absent (or invalidated) and another thread
    /// already owned the calibration ticket, so this run proceeded with
    /// the default policy instead of waiting.
    Miss,
    /// The fingerprint was absent and this thread ran the candidate
    /// sweep, installing the winner in the cache.
    Calibrate,
}

impl TuneOutcome {
    /// Stable lowercase name, used as the JSON key for the outcome.
    pub fn name(self) -> &'static str {
        match self {
            TuneOutcome::Hit => "hit",
            TuneOutcome::Miss => "miss",
            TuneOutcome::Calibrate => "calibrate",
        }
    }
}

/// Where a worker found a job it did not pop from its own deque.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StealSource {
    /// The pool-global injector queue.
    Injector,
    /// Another worker's deque.
    Peer,
}

/// One structured occurrence in an instrumented run.
///
/// Durations are in nanoseconds and are measured by the emitting site
/// *only when a sink is installed* (see the crate-level
/// zero-cost-when-disabled contract).
#[derive(Clone, Copy, Debug)]
pub enum Event {
    /// A spliterator was split; `depth` is the tree depth of the node
    /// that split (root = 0).
    Split {
        /// Tree depth of the node that split.
        depth: u32,
        /// Whether a demand-driven (adaptive) policy made this split
        /// decision, as opposed to a static size threshold.
        adaptive: bool,
    },
    /// Time attributed to the descending phase (splitting and task
    /// setup), excluding leaf and combine work.
    DescendNs {
        /// Nanoseconds spent descending.
        ns: u64,
    },
    /// A leaf was evaluated.
    Leaf {
        /// Which kernel the driver dispatched to.
        route: LeafRoute,
        /// Number of items the leaf covered.
        items: u64,
        /// Nanoseconds spent inside the leaf kernel.
        ns: u64,
    },
    /// Two child results were combined.
    Combine {
        /// Tree depth of the combining node (root = 0).
        depth: u32,
        /// Nanoseconds spent in the combiner.
        ns: u64,
        /// `true` when this was a destination-passing window merge (an
        /// O(1) bookkeeping step over the shared output buffer) rather
        /// than a splice of two materialized partial containers.
        placement: bool,
    },
    /// A pool worker executed one job.
    PoolExecute {
        /// Worker index within its pool.
        worker: u32,
    },
    /// A pool worker obtained a job by stealing.
    PoolSteal {
        /// The thief.
        worker: u32,
        /// Where the job came from.
        source: StealSource,
    },
    /// A pool worker parked (went to sleep awaiting work).
    PoolPark {
        /// Worker index within its pool.
        worker: u32,
    },
    /// A `join` resolved; `stolen` is true when the pending half had
    /// been stolen by another worker (the joiner helped while waiting).
    PoolJoin {
        /// Whether the pending half was executed by a thief.
        stolen: bool,
    },
    /// A `SharedState` lock acquisition; `contended` is true when the
    /// uncontended `try_lock` fast path failed and the caller blocked.
    SharedStateLock {
        /// Whether the acquisition had to block.
        contended: bool,
    },
    /// An execution-session checkpoint (split, leaf entry or combine)
    /// observed a tripped cancel token or an expired deadline and pruned
    /// its subtree. One event per short-circuited checkpoint.
    Cancel {
        /// Why the session was cancelled.
        reason: CancelReason,
    },
    /// A search driver abandoned a subtree without scanning it — either
    /// a sibling's hit tripped the `Found` cancellation, or (for
    /// `find_first`) the shared best-prefix index proved the subtree
    /// cannot contain an earlier hit. One event per pruned subtree root.
    EarlyExit {
        /// Pruned subtree roots this event accounts for (currently
        /// always 1; the field keeps the schema open for batched
        /// emission).
        leaves_pruned: u64,
    },
    /// A parallel driver degraded to the sequential route instead of
    /// submitting to its pool.
    Fallback {
        /// Why the driver fell back.
        reason: FallbackReason,
    },
    /// A self-tuning driver consulted its plan cache before executing.
    Tune {
        /// How the cache served this run.
        outcome: TuneOutcome,
    },
    /// One MPI-sim point-to-point message (collectives decompose into
    /// these).
    MpiSend {
        /// Sending rank.
        from: u32,
        /// Receiving rank.
        to: u32,
        /// Payload size in bytes (`size_of` the message type).
        bytes: u64,
    },
}
