//! The merged view of a recorded run, plus its JSON rendering.

use std::fmt::Write as _;

/// Leaf statistics for one dispatch route.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RouteStats {
    /// Number of leaves that took this route.
    pub leaves: u64,
    /// Total items those leaves covered.
    pub items: u64,
}

/// Leaf counts broken down by [`LeafRoute`](crate::LeafRoute).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RouteHistogram {
    /// Leaves served by `Collector::leaf_slice`.
    pub zero_copy_slice: RouteStats,
    /// Leaves served by `Collector::leaf_strided`.
    pub zero_copy_strided: RouteStats,
    /// Leaves served by a fused adapter chain driven over the source's
    /// borrowed run.
    pub fused_borrow: RouteStats,
    /// Leaves that fell back to the cloning drain.
    pub cloning_drain: RouteStats,
    /// Leaves computed by a JPLF template leaf case.
    pub template: RouteStats,
    /// Leaves that wrote straight into a destination-passing output
    /// window (the placement collect route).
    pub placement: RouteStats,
}

impl RouteHistogram {
    /// Total number of leaves across all routes.
    pub fn total_leaves(&self) -> u64 {
        self.zero_copy_slice.leaves
            + self.zero_copy_strided.leaves
            + self.fused_borrow.leaves
            + self.cloning_drain.leaves
            + self.template.leaves
            + self.placement.leaves
    }

    /// Total items across all routes.
    pub fn total_items(&self) -> u64 {
        self.zero_copy_slice.items
            + self.zero_copy_strided.items
            + self.fused_borrow.items
            + self.cloning_drain.items
            + self.template.items
            + self.placement.items
    }
}

/// Scheduler activity attributed to one pool worker.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Worker index within its pool.
    pub worker: u32,
    /// Jobs this worker executed.
    pub executed: u64,
    /// Jobs it claimed from the global injector.
    pub injector_steals: u64,
    /// Jobs it stole from peer deques.
    pub peer_steals: u64,
    /// Times it parked awaiting work.
    pub parks: u64,
}

/// MPI-sim traffic attributed to one rank.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RankStats {
    /// Rank number.
    pub rank: u32,
    /// Messages this rank sent.
    pub sends: u64,
    /// Bytes this rank sent.
    pub send_bytes: u64,
    /// Messages this rank received.
    pub recvs: u64,
    /// Bytes this rank received.
    pub recv_bytes: u64,
}

/// The merged result of one recorded section: tree shape, phase times,
/// leaf-route histogram, scheduler activity and MPI traffic.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunReport {
    /// Number of splits in the divide phase.
    pub splits: u64,
    /// Splits decided by a demand-driven (adaptive) policy rather than a
    /// static size threshold.
    pub splits_adaptive: u64,
    /// Histogram of split counts by tree depth (index = depth), trimmed
    /// of trailing zeros.
    pub split_depths: Vec<u64>,
    /// Nanoseconds attributed to the descending phase.
    pub descend_ns: u64,
    /// Leaf counts by dispatch route.
    pub routes: RouteHistogram,
    /// Nanoseconds spent inside leaf kernels.
    pub leaf_ns: u64,
    /// Number of combine steps in the ascending phase.
    pub combines: u64,
    /// Combine steps that were destination-passing window merges (O(1)
    /// bookkeeping over the shared output buffer, no splice).
    pub combines_placement: u64,
    /// Nanoseconds spent combining.
    pub ascend_ns: u64,
    /// Jobs executed across all pool workers.
    pub executed: u64,
    /// Per-worker scheduler activity (trimmed to the workers that did
    /// anything).
    pub per_worker: Vec<WorkerStats>,
    /// Joins resolved.
    pub joins: u64,
    /// Joins whose pending half was executed by a thief.
    pub joins_stolen: u64,
    /// `SharedState` lock acquisitions.
    pub lock_acquisitions: u64,
    /// Acquisitions that had to block past the `try_lock` fast path.
    pub lock_contended: u64,
    /// Per-rank MPI-sim traffic (empty for non-MPI runs).
    pub per_rank: Vec<RankStats>,
    /// Subtrees pruned because a sibling panicked.
    pub cancels_panic: u64,
    /// Subtrees pruned by a caller-held cancel token.
    pub cancels_user: u64,
    /// Subtrees pruned by an expired deadline.
    pub cancels_deadline: u64,
    /// Checkpoints that observed a search's `Found` short-circuit.
    pub cancels_found: u64,
    /// Subtrees a search driver abandoned without scanning (one per
    /// [`Event::EarlyExit`](crate::Event::EarlyExit)).
    pub early_exits: u64,
    /// Total pruned subtree roots those early exits accounted for.
    pub leaves_pruned: u64,
    /// Parallel collects that degraded to the sequential route because
    /// the pool backlog exceeded the saturation threshold.
    pub fallbacks_saturated: u64,
    /// Parallel collects that degraded because pool submission failed.
    pub fallbacks_submit: u64,
    /// Tuned executions served by a cached plan.
    pub tune_hits: u64,
    /// Tuned executions that found no plan and could not claim the
    /// calibration ticket (another thread held it).
    pub tune_misses: u64,
    /// Tuned executions that ran the candidate sweep and installed a
    /// plan.
    pub tune_calibrations: u64,
}

impl RunReport {
    /// Deepest tree level at which a split occurred (0 when no splits).
    pub fn max_split_depth(&self) -> u32 {
        self.split_depths.len().saturating_sub(1) as u32
    }

    /// Total phase time: descend + leaf + ascend, in nanoseconds.
    pub fn phase_ns(&self) -> u64 {
        self.descend_ns + self.leaf_ns + self.ascend_ns
    }

    /// Fraction of phase time spent descending (0 when nothing timed).
    pub fn descend_share(&self) -> f64 {
        share(self.descend_ns, self.phase_ns())
    }

    /// Fraction of phase time spent in leaf kernels.
    pub fn leaf_share(&self) -> f64 {
        share(self.leaf_ns, self.phase_ns())
    }

    /// Fraction of phase time spent combining.
    pub fn ascend_share(&self) -> f64 {
        share(self.ascend_ns, self.phase_ns())
    }

    /// Total steals (injector + peer) across all workers.
    pub fn steals(&self) -> u64 {
        self.per_worker
            .iter()
            .map(|w| w.injector_steals + w.peer_steals)
            .sum()
    }

    /// Steals per executed job (0 when nothing executed).
    pub fn steal_ratio(&self) -> f64 {
        share(self.steals(), self.executed)
    }

    /// Contended fraction of `SharedState` lock acquisitions.
    pub fn contention_ratio(&self) -> f64 {
        share(self.lock_contended, self.lock_acquisitions)
    }

    /// Total subtrees pruned by session cancellation, over all reasons.
    pub fn cancels(&self) -> u64 {
        self.cancels_panic + self.cancels_user + self.cancels_deadline + self.cancels_found
    }

    /// Total sequential-route fallbacks, over all reasons.
    pub fn fallbacks(&self) -> u64 {
        self.fallbacks_saturated + self.fallbacks_submit
    }

    /// Total plan-cache consultations, over all outcomes.
    pub fn tunes(&self) -> u64 {
        self.tune_hits + self.tune_misses + self.tune_calibrations
    }

    /// Renders the report as a self-describing JSON object (schema tag
    /// `plobs.run_report.v2`; v2 added the `placement` route and
    /// `combines_placement`). The output always passes
    /// [`crate::json::validate`].
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"schema\":\"plobs.run_report.v2\",");

        out.push_str("\"tree\":{");
        let _ = write!(
            out,
            "\"splits\":{},\"adaptive_splits\":{},\"max_split_depth\":{},\"split_depths\":[",
            self.splits,
            self.splits_adaptive,
            self.max_split_depth()
        );
        push_u64_list(&mut out, self.split_depths.iter().copied());
        let _ = write!(
            out,
            "],\"combines\":{},\"combines_placement\":{}}},",
            self.combines, self.combines_placement
        );

        out.push_str("\"phases\":{");
        let _ = write!(
            out,
            "\"descend_ns\":{},\"leaf_ns\":{},\"ascend_ns\":{},\
             \"descend_share\":{},\"leaf_share\":{},\"ascend_share\":{}}},",
            self.descend_ns,
            self.leaf_ns,
            self.ascend_ns,
            json_f64(self.descend_share()),
            json_f64(self.leaf_share()),
            json_f64(self.ascend_share()),
        );

        out.push_str("\"routes\":{");
        push_route(&mut out, "zero_copy_slice", self.routes.zero_copy_slice);
        out.push(',');
        push_route(&mut out, "zero_copy_strided", self.routes.zero_copy_strided);
        out.push(',');
        push_route(&mut out, "fused_borrow", self.routes.fused_borrow);
        out.push(',');
        push_route(&mut out, "cloning_drain", self.routes.cloning_drain);
        out.push(',');
        push_route(&mut out, "template", self.routes.template);
        out.push(',');
        push_route(&mut out, "placement", self.routes.placement);
        let _ = write!(
            out,
            ",\"total_leaves\":{},\"total_items\":{}}},",
            self.routes.total_leaves(),
            self.routes.total_items()
        );

        out.push_str("\"pool\":{");
        let _ = write!(
            out,
            "\"executed\":{},\"joins\":{},\"joins_stolen\":{},\"steals\":{},\
             \"steal_ratio\":{},\"workers\":[",
            self.executed,
            self.joins,
            self.joins_stolen,
            self.steals(),
            json_f64(self.steal_ratio()),
        );
        for (i, w) in self.per_worker.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"worker\":{},\"executed\":{},\"injector_steals\":{},\
                 \"peer_steals\":{},\"parks\":{}}}",
                w.worker, w.executed, w.injector_steals, w.peer_steals, w.parks
            );
        }
        out.push_str("]},");

        let _ = write!(
            out,
            "\"shared_state\":{{\"acquisitions\":{},\"contended\":{},\
             \"contention_ratio\":{}}},",
            self.lock_acquisitions,
            self.lock_contended,
            json_f64(self.contention_ratio()),
        );

        let _ = write!(
            out,
            "\"sessions\":{{\"cancels\":{},\"cancel_panic\":{},\"cancel_user\":{},\
             \"cancel_deadline\":{},\"cancel_found\":{},\"early_exits\":{},\
             \"leaves_pruned\":{},\"fallbacks\":{},\"fallback_saturated\":{},\
             \"fallback_submit\":{}}},",
            self.cancels(),
            self.cancels_panic,
            self.cancels_user,
            self.cancels_deadline,
            self.cancels_found,
            self.early_exits,
            self.leaves_pruned,
            self.fallbacks(),
            self.fallbacks_saturated,
            self.fallbacks_submit,
        );

        let _ = write!(
            out,
            "\"tune\":{{\"consults\":{},\"hits\":{},\"misses\":{},\
             \"calibrations\":{}}},",
            self.tunes(),
            self.tune_hits,
            self.tune_misses,
            self.tune_calibrations,
        );

        out.push_str("\"mpi\":{\"ranks\":[");
        for (i, r) in self.per_rank.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"rank\":{},\"sends\":{},\"send_bytes\":{},\
                 \"recvs\":{},\"recv_bytes\":{}}}",
                r.rank, r.sends, r.send_bytes, r.recvs, r.recv_bytes
            );
        }
        out.push_str("]}}");
        out
    }

    /// Renders a short human-readable tree summary (used by the
    /// polynomial example): one line per phase plus route and
    /// scheduler totals.
    pub fn tree_summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "  tree: {} splits ({} adaptive, max depth {}), {} leaves, {} combines",
            self.splits,
            self.splits_adaptive,
            self.max_split_depth(),
            self.routes.total_leaves(),
            self.combines
        );
        let _ = writeln!(
            out,
            "  phases: descend {:.1}% | leaf {:.1}% | ascend {:.1}%  ({} ns timed)",
            100.0 * self.descend_share(),
            100.0 * self.leaf_share(),
            100.0 * self.ascend_share(),
            self.phase_ns()
        );
        let _ = writeln!(
            out,
            "  routes: slice {} / strided {} / fused {} / cloned {} / template {} / placement {} (leaves)",
            self.routes.zero_copy_slice.leaves,
            self.routes.zero_copy_strided.leaves,
            self.routes.fused_borrow.leaves,
            self.routes.cloning_drain.leaves,
            self.routes.template.leaves,
            self.routes.placement.leaves
        );
        let _ = write!(
            out,
            "  pool: {} executed, {} steals (ratio {:.2}), {} joins ({} stolen)",
            self.executed,
            self.steals(),
            self.steal_ratio(),
            self.joins,
            self.joins_stolen
        );
        out
    }
}

fn share(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64
    }
}

/// Formats a finite `f64` as a JSON number. Shares and ratios are
/// always finite by construction.
fn json_f64(v: f64) -> String {
    debug_assert!(v.is_finite());
    format!("{:.6}", v)
}

fn push_u64_list(out: &mut String, items: impl Iterator<Item = u64>) {
    for (i, v) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}", v);
    }
}

fn push_route(out: &mut String, name: &str, stats: RouteStats) {
    let _ = write!(
        out,
        "\"{}\":{{\"leaves\":{},\"items\":{}}}",
        name, stats.leaves, stats.items
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunReport {
        RunReport {
            splits: 7,
            splits_adaptive: 3,
            split_depths: vec![1, 2, 4],
            descend_ns: 100,
            routes: RouteHistogram {
                zero_copy_slice: RouteStats {
                    leaves: 8,
                    items: 64,
                },
                fused_borrow: RouteStats {
                    leaves: 2,
                    items: 16,
                },
                placement: RouteStats {
                    leaves: 4,
                    items: 32,
                },
                ..Default::default()
            },
            leaf_ns: 700,
            combines: 7,
            combines_placement: 3,
            ascend_ns: 200,
            executed: 14,
            per_worker: vec![
                WorkerStats {
                    worker: 0,
                    executed: 8,
                    injector_steals: 1,
                    peer_steals: 0,
                    parks: 2,
                },
                WorkerStats {
                    worker: 1,
                    executed: 6,
                    injector_steals: 0,
                    peer_steals: 3,
                    parks: 1,
                },
            ],
            joins: 7,
            joins_stolen: 2,
            lock_acquisitions: 10,
            lock_contended: 1,
            per_rank: vec![RankStats {
                rank: 0,
                sends: 3,
                send_bytes: 24,
                recvs: 3,
                recv_bytes: 24,
            }],
            cancels_panic: 2,
            cancels_user: 0,
            cancels_deadline: 1,
            cancels_found: 1,
            early_exits: 2,
            leaves_pruned: 2,
            fallbacks_saturated: 1,
            fallbacks_submit: 0,
            tune_hits: 4,
            tune_misses: 1,
            tune_calibrations: 2,
        }
    }

    #[test]
    fn shares_sum_to_one_when_timed() {
        let r = sample();
        let total = r.descend_share() + r.leaf_share() + r.ascend_share();
        assert!((total - 1.0).abs() < 1e-9);
        assert!((r.leaf_share() - 0.7).abs() < 1e-9);
    }

    #[test]
    fn empty_report_has_zero_shares_not_nan() {
        let r = RunReport::default();
        assert_eq!(r.descend_share(), 0.0);
        assert_eq!(r.steal_ratio(), 0.0);
        assert_eq!(r.contention_ratio(), 0.0);
    }

    #[test]
    fn steal_ratio_counts_both_sources() {
        let r = sample();
        assert_eq!(r.steals(), 4);
        assert!((r.steal_ratio() - 4.0 / 14.0).abs() < 1e-9);
    }

    #[test]
    fn json_is_valid_and_self_describing() {
        let r = sample();
        let json = r.to_json();
        crate::json::validate(&json).unwrap();
        assert!(json.starts_with("{\"schema\":\"plobs.run_report.v2\""));
        assert!(json.contains("\"adaptive_splits\":3"));
        assert!(json.contains("\"split_depths\":[1,2,4]"));
        assert!(json.contains("\"zero_copy_slice\":{\"leaves\":8,\"items\":64}"));
        assert!(json.contains("\"fused_borrow\":{\"leaves\":2,\"items\":16}"));
        assert!(json.contains("\"placement\":{\"leaves\":4,\"items\":32}"));
        assert!(json.contains("\"combines_placement\":3"));
        assert_eq!(r.routes.total_leaves(), 14);
        assert_eq!(r.routes.total_items(), 112);
        assert!(json.contains("\"leaf_share\":0.700000"));
        assert!(json.contains("\"ranks\":[{\"rank\":0"));
        assert!(json.contains("\"sessions\":{\"cancels\":4,\"cancel_panic\":2"));
        assert!(json.contains("\"cancel_found\":1"));
        assert!(json.contains("\"early_exits\":2"));
        assert!(json.contains("\"leaves_pruned\":2"));
        assert!(json.contains("\"fallback_saturated\":1"));
        assert!(
            json.contains("\"tune\":{\"consults\":7,\"hits\":4,\"misses\":1,\"calibrations\":2}")
        );
    }

    #[test]
    fn session_totals_sum_reasons() {
        let r = sample();
        assert_eq!(r.cancels(), 4);
        assert_eq!(r.fallbacks(), 1);
        assert_eq!(r.tunes(), 7);
        assert_eq!(RunReport::default().cancels(), 0);
        assert_eq!(RunReport::default().tunes(), 0);
    }

    #[test]
    fn empty_report_json_is_valid() {
        crate::json::validate(&RunReport::default().to_json()).unwrap();
    }
}
