//! A minimal JSON validator (no external dependencies).
//!
//! The repository has no serde; reports are emitted by hand-written
//! formatting code, so CI needs an independent check that the output is
//! well-formed JSON. This is a strict recursive-descent recogniser for
//! RFC 8259 — it accepts exactly one top-level value and rejects
//! trailing garbage, unescaped control characters, leading zeros, bare
//! `NaN`, and the other classic hand-rolled-emitter mistakes.

/// Validates that `input` is one well-formed JSON value. Returns the
/// byte offset and a short message on the first error.
pub fn validate(input: &str) -> Result<(), String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after top-level value"));
    }
    Ok(())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("invalid JSON at byte {}: {}", self.pos, msg)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal(b"true"),
            Some(b'f') => self.literal(b"false"),
            Some(b'n') => self.literal(b"null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("expected a JSON value")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &[u8]) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key"));
            }
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(()),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(()),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(()),
                Some(b'\\') => match self.bump() {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {}
                    Some(b'u') => {
                        for _ in 0..4 {
                            match self.bump() {
                                Some(b) if b.is_ascii_hexdigit() => {}
                                _ => return Err(self.err("bad \\u escape")),
                            }
                        }
                    }
                    _ => return Err(self.err("bad escape")),
                },
                Some(b) if b < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(_) => {}
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: '0' alone, or a nonzero digit followed by more.
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(b'0'..=b'9')) {
                    return Err(self.err("leading zero in number"));
                }
            }
            Some(b'1'..=b'9') => self.digits(),
            _ => return Err(self.err("expected digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit after '.'"));
            }
            self.digits();
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit in exponent"));
            }
            self.digits();
        }
        Ok(())
    }

    fn digits(&mut self) {
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::validate;

    #[test]
    fn accepts_well_formed_values() {
        for ok in [
            "{}",
            "[]",
            "0",
            "-1.5e-3",
            "\"hi \\n \\u00e9\"",
            "true",
            "null",
            r#"{"a":[1,2,{"b":null}],"c":0.125}"#,
            " { \"k\" : [ true , false ] } ",
        ] {
            validate(ok).unwrap_or_else(|e| panic!("{ok:?} rejected: {e}"));
        }
    }

    #[test]
    fn rejects_malformed_values() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1,}",
            "{a:1}",
            "01",
            "1.",
            "NaN",
            "\"unterminated",
            "\"bad \\q escape\"",
            "{} extra",
            "[1 2]",
        ] {
            assert!(validate(bad).is_err(), "{bad:?} wrongly accepted");
        }
    }

    #[test]
    fn errors_carry_position() {
        let err = validate("[1,]").unwrap_err();
        assert!(err.contains("byte 3"), "{err}");
    }
}
