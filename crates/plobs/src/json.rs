//! A minimal JSON validator and value parser (no external dependencies).
//!
//! The repository has no serde; reports are emitted by hand-written
//! formatting code, so CI needs an independent check that the output is
//! well-formed JSON. This is a strict recursive-descent recogniser for
//! RFC 8259 — it accepts exactly one top-level value and rejects
//! trailing garbage, unescaped control characters, leading zeros, bare
//! `NaN`, and the other classic hand-rolled-emitter mistakes.
//!
//! [`parse`] reuses the same grammar to build a [`Value`] tree, which
//! the `pltune` plan cache uses to reload persisted tuning plans. It is
//! deliberately small: objects are ordered key/value vectors, numbers
//! are `f64` (plenty for leaf sizes and counters).

/// Validates that `input` is one well-formed JSON value. Returns the
/// byte offset and a short message on the first error.
pub fn validate(input: &str) -> Result<(), String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after top-level value"));
    }
    Ok(())
}

/// A parsed JSON value. Object members keep their source order.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string, with escapes decoded.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, as ordered `(key, value)` pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object (`None` for other variants or a
    /// missing key).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a `Num`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a `u64`, when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an `Arr`.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parses `input` into a [`Value`] under the same strict grammar as
/// [`validate`] (exactly one top-level value, no trailing garbage).
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after top-level value"));
    }
    Ok(v)
}

/// Escapes `s` for embedding inside a JSON string literal (quotes not
/// included). The inverse of the decoding [`parse`] performs.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("invalid JSON at byte {}: {}", self.pos, msg)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal(b"true"),
            Some(b'f') => self.literal(b"false"),
            Some(b'n') => self.literal(b"null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("expected a JSON value")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &[u8]) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key"));
            }
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(()),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(()),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(()),
                Some(b'\\') => match self.bump() {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {}
                    Some(b'u') => {
                        for _ in 0..4 {
                            match self.bump() {
                                Some(b) if b.is_ascii_hexdigit() => {}
                                _ => return Err(self.err("bad \\u escape")),
                            }
                        }
                    }
                    _ => return Err(self.err("bad escape")),
                },
                Some(b) if b < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(_) => {}
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: '0' alone, or a nonzero digit followed by more.
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(b'0'..=b'9')) {
                    return Err(self.err("leading zero in number"));
                }
            }
            Some(b'1'..=b'9') => self.digits(),
            _ => return Err(self.err("expected digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit after '.'"));
            }
            self.digits();
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit in exponent"));
            }
            self.digits();
        }
        Ok(())
    }

    fn digits(&mut self) {
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
    }

    // --- value-building counterparts (same grammar as the recognisers) ---

    fn parse_value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b't') => self.literal(b"true").map(|_| Value::Bool(true)),
            Some(b'f') => self.literal(b"false").map(|_| Value::Bool(false)),
            Some(b'n') => self.literal(b"null").map(|_| Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.err("expected a JSON value")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        self.skip_ws();
        let mut members = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key"));
            }
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            members.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Obj(members)),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        self.skip_ws();
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Arr(items)),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut buf = Vec::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    // Unescaped spans come straight from a valid `&str`,
                    // and decoded escapes are encoded as UTF-8 below.
                    return String::from_utf8(buf).map_err(|_| self.err("invalid UTF-8"));
                }
                Some(b'\\') => match self.bump() {
                    Some(b'"') => buf.push(b'"'),
                    Some(b'\\') => buf.push(b'\\'),
                    Some(b'/') => buf.push(b'/'),
                    Some(b'b') => buf.push(0x08),
                    Some(b'f') => buf.push(0x0c),
                    Some(b'n') => buf.push(b'\n'),
                    Some(b'r') => buf.push(b'\r'),
                    Some(b't') => buf.push(b'\t'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let code = if (0xd800..0xdc00).contains(&hi) {
                            // Surrogate pair: require the low half.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("unpaired surrogate"));
                            }
                            let lo = self.hex4()?;
                            if !(0xdc00..0xe000).contains(&lo) {
                                return Err(self.err("unpaired surrogate"));
                            }
                            0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                        } else if (0xdc00..0xe000).contains(&hi) {
                            return Err(self.err("unpaired surrogate"));
                        } else {
                            hi
                        };
                        match char::from_u32(code) {
                            Some(c) => {
                                let mut tmp = [0u8; 4];
                                buf.extend_from_slice(c.encode_utf8(&mut tmp).as_bytes());
                            }
                            None => return Err(self.err("bad \\u escape")),
                        }
                    }
                    _ => return Err(self.err("bad escape")),
                },
                Some(b) if b < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(b) => buf.push(b),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut v = 0u32;
        for _ in 0..4 {
            match self.bump() {
                Some(b) if b.is_ascii_hexdigit() => {
                    v = v * 16 + (b as char).to_digit(16).unwrap();
                }
                _ => return Err(self.err("bad \\u escape")),
            }
        }
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        self.number()?;
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("unrepresentable number"))
    }
}

#[cfg(test)]
mod tests {
    use super::{escape, parse, validate, Value};

    #[test]
    fn accepts_well_formed_values() {
        for ok in [
            "{}",
            "[]",
            "0",
            "-1.5e-3",
            "\"hi \\n \\u00e9\"",
            "true",
            "null",
            r#"{"a":[1,2,{"b":null}],"c":0.125}"#,
            " { \"k\" : [ true , false ] } ",
        ] {
            validate(ok).unwrap_or_else(|e| panic!("{ok:?} rejected: {e}"));
        }
    }

    #[test]
    fn rejects_malformed_values() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1,}",
            "{a:1}",
            "01",
            "1.",
            "NaN",
            "\"unterminated",
            "\"bad \\q escape\"",
            "{} extra",
            "[1 2]",
        ] {
            assert!(validate(bad).is_err(), "{bad:?} wrongly accepted");
        }
    }

    #[test]
    fn errors_carry_position() {
        let err = validate("[1,]").unwrap_err();
        assert!(err.contains("byte 3"), "{err}");
    }

    #[test]
    fn parse_builds_the_value_tree() {
        let v = parse(r#"{"a":[1,2,{"b":null}],"c":0.125,"ok":true}"#).unwrap();
        assert_eq!(v.get("c").and_then(Value::as_f64), Some(0.125));
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        let a = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[2].get("b"), Some(&Value::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parse_decodes_escapes() {
        let v = parse(r#""line\nbreak é 😀 \"q\"""#).unwrap();
        assert_eq!(v.as_str(), Some("line\nbreak é 😀 \"q\""));
        assert!(parse(r#""\ud800""#).is_err(), "lone surrogate accepted");
    }

    #[test]
    fn parse_rejects_what_validate_rejects() {
        for bad in ["", "[1,]", "{\"a\":}", "01", "{} extra"] {
            assert!(parse(bad).is_err(), "{bad:?} wrongly parsed");
        }
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let original = "pipe<\"x\">\n\tτ\u{1}";
        let json = format!("\"{}\"", escape(original));
        validate(&json).unwrap();
        assert_eq!(parse(&json).unwrap().as_str(), Some(original));
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Value::Num(3.0).as_u64(), Some(3));
        assert_eq!(Value::Num(3.5).as_u64(), None);
        assert_eq!(Value::Num(-1.0).as_u64(), None);
    }
}
