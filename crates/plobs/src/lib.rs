//! # plobs — unified observability for the divide-and-conquer tree
//!
//! The paper's evaluation (Section V, Figure 3) argues from *where* a
//! PowerList computation spends its time: the descending/splitting
//! phase, the leaf phase, the ascending/combining phase, and — for the
//! parallel executors — how evenly the scheduler spreads that work.
//! This crate is the cross-cutting instrumentation layer that makes
//! those claims measurable on every execution route the repository
//! implements:
//!
//! * [`Event`] — one structured event per interesting occurrence:
//!   splits (with tree depth), leaves (with the [`LeafRoute`] the
//!   collect driver dispatched to), combines, fork-join pool activity
//!   (per-worker executes, steals, parks, join dispositions),
//!   [`SharedState`](https://docs.rs/) lock contention, and MPI-sim
//!   message traffic;
//! * [`EventSink`] — where events go. Installation is process-global
//!   ([`install`] / [`uninstall`]); when no sink is installed, every
//!   emission short-circuits on one relaxed atomic load
//!   (the **zero-cost-when-disabled contract** — see DESIGN.md);
//! * [`RunRecorder`] — the standard sink: lock-cheap per-thread shards
//!   of relaxed atomic counters, merged on [`RunRecorder::finish`] into
//!   a [`RunReport`];
//! * [`RunReport`] — the aggregate: split-depth histogram, leaf-route
//!   histogram, phase shares (`descend_share`/`leaf_share`/
//!   `ascend_share`), per-worker steal ratios, per-rank message counts,
//!   and a self-describing JSON rendering for `BENCH_*.json` trajectory
//!   rows.
//!
//! The convenience wrapper [`recorded`] serialises recording sections
//! process-wide (installation is global, so overlapping recordings
//! would cross-talk), making it safe to assert on reports from
//! concurrently running tests:
//!
//! ```
//! use plobs::{recorded, Event, LeafRoute};
//!
//! let (value, report) = recorded(|| {
//!     plobs::emit(Event::Split { depth: 0, adaptive: false });
//!     plobs::emit(Event::Leaf { route: LeafRoute::ZeroCopySlice, items: 8, ns: 120 });
//!     plobs::emit(Event::Leaf { route: LeafRoute::ZeroCopySlice, items: 8, ns: 110 });
//!     plobs::emit(Event::Combine { depth: 0, ns: 40, placement: false });
//!     42
//! });
//! assert_eq!(value, 42);
//! assert_eq!(report.splits, 1);
//! assert_eq!(report.routes.zero_copy_slice.leaves, 2);
//! assert_eq!(report.routes.zero_copy_slice.items, 16);
//! assert!(plobs::json::validate(&report.to_json()).is_ok());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod event;
pub mod json;
pub mod recorder;
pub mod report;

pub use event::{CancelReason, Event, FallbackReason, LeafRoute, StealSource, TuneOutcome};
pub use recorder::RunRecorder;
pub use report::{RankStats, RouteHistogram, RouteStats, RunReport, WorkerStats};

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, PoisonError, RwLock};

/// Anything that consumes [`Event`]s. Implementations must be cheap and
/// non-blocking on the record path — they are called from pool workers
/// and MPI-sim rank threads.
pub trait EventSink: Send + Sync {
    /// Consumes one event.
    fn record(&self, event: &Event);
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SINK: RwLock<Option<Arc<dyn EventSink>>> = RwLock::new(None);

/// `true` while a sink is installed. Instrumentation sites use this to
/// skip *measurement* work (`Instant::now`, size queries) entirely when
/// nobody is listening — the zero-cost-when-disabled contract.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Emits one event to the installed sink, if any. When no sink is
/// installed this is a single relaxed atomic load and a branch.
#[inline]
pub fn emit(event: Event) {
    if enabled() {
        emit_slow(&event);
    }
}

#[cold]
fn emit_slow(event: &Event) {
    // Poisoning is transparent: a sink that panicked while recording
    // must not wedge every later emission.
    let sink = SINK.read().unwrap_or_else(PoisonError::into_inner);
    if let Some(sink) = sink.as_ref() {
        sink.record(event);
    }
}

/// Installs `sink` as the process-global event sink, replacing any
/// previous one. Prefer [`recorded`], which serialises concurrent
/// recording sections and guarantees uninstallation.
pub fn install(sink: Arc<dyn EventSink>) {
    *SINK.write().unwrap_or_else(PoisonError::into_inner) = Some(sink);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Removes the global sink; subsequent emissions short-circuit.
pub fn uninstall() {
    ENABLED.store(false, Ordering::Relaxed);
    *SINK.write().unwrap_or_else(PoisonError::into_inner) = None;
}

/// Forwards to the globally installed sink. Lets code that takes an
/// explicit `&dyn EventSink` (the JPLF instrumented recursion) publish
/// to whatever [`install`]ed sink is active.
pub struct GlobalSink;

impl EventSink for GlobalSink {
    fn record(&self, event: &Event) {
        emit(*event);
    }
}

/// Serialises [`recorded`] sections: installation is process-global, so
/// two overlapping recordings would observe each other's events.
static RECORD_GUARD: Mutex<()> = Mutex::new(());

/// Runs `f` with a fresh [`RunRecorder`] installed as the global sink
/// and returns `f`'s result together with the merged [`RunReport`].
///
/// Recording sections are mutually exclusive process-wide (a global
/// lock), so concurrent tests asserting on reports cannot cross-talk;
/// the sink is uninstalled even if `f` panics.
pub fn recorded<R>(f: impl FnOnce() -> R) -> (R, RunReport) {
    let _serial = RECORD_GUARD.lock();
    let recorder = Arc::new(RunRecorder::new());
    install(Arc::clone(&recorder) as Arc<dyn EventSink>);
    // Uninstall on unwind too, or a panicking section would leave the
    // sink (and its recorder) live for unrelated code.
    struct Uninstall;
    impl Drop for Uninstall {
        fn drop(&mut self) {
            uninstall();
        }
    }
    let guard = Uninstall;
    let out = f();
    drop(guard);
    (out, recorder.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_emissions_are_dropped() {
        let _serial = RECORD_GUARD.lock();
        assert!(!enabled());
        emit(Event::Split {
            depth: 3,
            adaptive: false,
        }); // must not panic or store
    }

    #[test]
    fn recorded_scopes_install_and_uninstall() {
        let ((), report) = recorded(|| {
            assert!(enabled());
            emit(Event::Leaf {
                route: LeafRoute::CloningDrain,
                items: 5,
                ns: 10,
            });
        });
        assert!(!enabled());
        assert_eq!(report.routes.cloning_drain.leaves, 1);
        assert_eq!(report.routes.cloning_drain.items, 5);
    }

    #[test]
    fn recorded_uninstalls_on_panic() {
        let r = std::panic::catch_unwind(|| {
            recorded(|| -> i32 { panic!("section bang") });
        });
        assert!(r.is_err());
        assert!(!enabled(), "panicking section must uninstall the sink");
        // And the lock was released: a fresh section still works.
        let (v, _) = recorded(|| 7);
        assert_eq!(v, 7);
    }

    #[test]
    fn events_from_other_threads_reach_the_recorder() {
        let ((), report) = recorded(|| {
            let hs: Vec<_> = (0..4)
                .map(|w| {
                    std::thread::spawn(move || {
                        for _ in 0..10 {
                            emit(Event::PoolExecute { worker: w });
                        }
                    })
                })
                .collect();
            for h in hs {
                h.join().unwrap();
            }
        });
        assert_eq!(report.executed, 40);
        assert_eq!(report.per_worker.len(), 4);
        assert!(report.per_worker.iter().all(|w| w.executed == 10));
    }

    #[test]
    fn global_sink_forwards() {
        let ((), report) = recorded(|| {
            let fwd = GlobalSink;
            fwd.record(&Event::Combine {
                depth: 2,
                ns: 99,
                placement: false,
            });
        });
        assert_eq!(report.combines, 1);
        assert_eq!(report.ascend_ns, 99);
    }
}
