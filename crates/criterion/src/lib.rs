//! Offline stand-in for `criterion`.
//!
//! Keeps the bench sources unchanged: `criterion_group!`/`criterion_main!`,
//! `Criterion::benchmark_group`, `BenchmarkGroup` knobs, `BenchmarkId`,
//! and `Bencher::iter`. Measurement is a plain warm-up + fixed-sample
//! wall-clock loop; each benchmark prints one line with
//! `[min median mean max]` of the per-iteration time, which is what the
//! experiment notes (EXPERIMENTS.md) record.

use std::time::{Duration, Instant};

/// Identifier for one benchmark within a group: `function/parameter`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id printed as `function_name/parameter`.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }
}

#[derive(Clone, Copy)]
struct MeasureConfig {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for MeasureConfig {
    fn default() -> Self {
        MeasureConfig {
            sample_size: 20,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
        }
    }
}

/// Times closures handed to [`Bencher::iter`].
pub struct Bencher<'a> {
    config: MeasureConfig,
    label: &'a str,
}

impl Bencher<'_> {
    /// Runs `f` through warm-up plus `sample_size` timed samples and
    /// prints the per-iteration time statistics.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up budget elapses (at least once).
        let warm_start = Instant::now();
        loop {
            std::hint::black_box(f());
            if warm_start.elapsed() >= self.config.warm_up_time {
                break;
            }
        }
        // Calibrate iterations per sample from one timed call.
        let once = Instant::now();
        std::hint::black_box(f());
        let rough = once.elapsed().max(Duration::from_nanos(1));
        let per_sample = self.config.measurement_time / self.config.sample_size as u32;
        let iters = (per_sample.as_nanos() / rough.as_nanos()).clamp(1, 1_000_000) as u32;

        let mut samples: Vec<f64> = Vec::with_capacity(self.config.sample_size);
        for _ in 0..self.config.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            samples.push(t.elapsed().as_secs_f64() / iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite sample times"));
        let min = samples[0];
        let max = samples[samples.len() - 1];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "{:<40} time: [{} {} {} {}] ({} samples x {} iters)",
            self.label,
            fmt_time(min),
            fmt_time(median),
            fmt_time(mean),
            fmt_time(max),
            samples.len(),
            iters,
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.3} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// A named set of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup {
    name: String,
    config: MeasureConfig,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(2);
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Benchmarks `f`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        let mut b = Bencher {
            config: self.config,
            label: &label,
        };
        f(&mut b, input);
    }

    /// Benchmarks `f` under `name`.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, mut f: F)
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let label = format!("{}/{}", self.name, name);
        let mut b = Bencher {
            config: self.config,
            label: &label,
        };
        f(&mut b);
    }

    /// Ends the group (kept for API compatibility; prints a separator).
    pub fn finish(self) {
        println!();
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a benchmark group named `name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("-- group {name} --");
        BenchmarkGroup {
            name,
            config: MeasureConfig::default(),
        }
    }

    /// Kept for API compatibility; command-line options are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Bundles benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_prints() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.warm_up_time(Duration::from_millis(1));
        g.measurement_time(Duration::from_millis(5));
        let mut ran = 0u64;
        g.bench_with_input(BenchmarkId::new("noop", 1), &1u32, |b, &x| {
            b.iter(|| {
                ran += 1;
                x + 1
            })
        });
        g.bench_function("named", |b| b.iter(|| 2 + 2));
        g.finish();
        assert!(ran > 0);
    }

    #[test]
    fn time_formatting_picks_units() {
        assert!(fmt_time(5e-9).ends_with("ns"));
        assert!(fmt_time(5e-6).ends_with("us"));
        assert!(fmt_time(5e-3).ends_with("ms"));
        assert!(fmt_time(5.0).ends_with(" s"));
    }
}
