//! Greedy list scheduling onto `P` virtual cores.
//!
//! Implements the classical greedy (work-conserving) scheduler: whenever
//! a core is idle and a task is ready, it runs. Graham's bound guarantees
//! the makespan is within 2× of optimal, and Brent's inequalities bound
//! it by `max(T₁/P, T∞) ≤ T_P ≤ T₁/P + T∞` — both are asserted in the
//! property tests, which is also how the simulator itself is validated.
//!
//! Determinism: ties are broken by task id, so a given DAG and core
//! count always produce the same schedule.

use crate::dag::{Dag, TaskId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The result of simulating a DAG on `cores` cores.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Simulated wall-clock time in nanoseconds.
    pub makespan: f64,
    /// Start time of each task (ns).
    pub start: Vec<f64>,
    /// Core each task ran on.
    pub core: Vec<usize>,
    /// Per-core busy time (ns) — for utilisation reports.
    pub busy: Vec<f64>,
}

impl Schedule {
    /// Fraction of core-time spent working, `work / (P × makespan)`.
    pub fn utilisation(&self) -> f64 {
        if self.makespan == 0.0 {
            return 1.0;
        }
        let total: f64 = self.busy.iter().sum();
        total / (self.busy.len() as f64 * self.makespan)
    }
}

/// Simulates greedy execution of `dag` on `cores` cores; returns the
/// schedule (deterministic for fixed inputs).
pub fn simulate(dag: &Dag, cores: usize) -> Schedule {
    let cores = cores.max(1);
    let n = dag.len();
    let mut indegree = vec![0usize; n];
    let mut children: Vec<Vec<TaskId>> = vec![Vec::new(); n];
    for (id, t) in dag.iter() {
        indegree[id] = t.deps.len();
        for &d in &t.deps {
            children[d].push(id);
        }
    }

    // Ready queue ordered by (ready_time, id); core pool by next-free
    // time. We process in event order.
    let mut ready: BinaryHeap<Reverse<(OrderedF64, TaskId)>> = BinaryHeap::new();
    let mut ready_time = vec![0.0f64; n];
    for (id, &deg) in indegree.iter().enumerate() {
        if deg == 0 {
            ready.push(Reverse((OrderedF64(0.0), id)));
        }
    }
    let mut core_free: BinaryHeap<Reverse<(OrderedF64, usize)>> =
        (0..cores).map(|c| Reverse((OrderedF64(0.0), c))).collect();

    let mut start = vec![0.0f64; n];
    let mut core_of = vec![0usize; n];
    let mut busy = vec![0.0f64; cores];
    let mut finish = vec![0.0f64; n];
    let mut makespan = 0.0f64;

    while let Some(Reverse((OrderedF64(rt), id))) = ready.pop() {
        let Reverse((OrderedF64(cf), core)) = core_free.pop().expect("cores never exhaust");
        let s = rt.max(cf);
        let t = dag.task(id);
        let f = s + t.cost;
        start[id] = s;
        core_of[id] = core;
        busy[core] += t.cost;
        finish[id] = f;
        makespan = makespan.max(f);
        core_free.push(Reverse((OrderedF64(f), core)));
        for &c in &children[id] {
            indegree[c] -= 1;
            ready_time[c] = ready_time[c].max(f);
            if indegree[c] == 0 {
                ready.push(Reverse((OrderedF64(ready_time[c]), c)));
            }
        }
    }

    Schedule {
        makespan,
        start,
        core: core_of,
        busy,
    }
}

/// Total-order wrapper for finite f64 times (costs are finite and
/// non-negative by DAG construction).
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrderedF64(f64);

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("times are finite")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn diamond() -> Dag {
        let mut d = Dag::new();
        let s = d.add(5.0, vec![], 0);
        let l = d.add(10.0, vec![s], 1);
        let r = d.add(40.0, vec![s], 1);
        d.add(5.0, vec![l, r], 2);
        d
    }

    #[test]
    fn one_core_gives_work() {
        let d = diamond();
        let s = simulate(&d, 1);
        assert_eq!(s.makespan, d.work());
        assert!((s.utilisation() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn many_cores_give_span() {
        let d = diamond();
        let s = simulate(&d, 64);
        assert_eq!(s.makespan, d.span());
    }

    #[test]
    fn two_cores_diamond() {
        let d = diamond();
        let s = simulate(&d, 2);
        // split 5, then 10 and 40 in parallel, join 5 → 5+40+5 = 50
        assert_eq!(s.makespan, 50.0);
    }

    #[test]
    fn deterministic() {
        let d = diamond();
        let a = simulate(&d, 3);
        let b = simulate(&d, 3);
        assert_eq!(a.start, b.start);
        assert_eq!(a.core, b.core);
    }

    #[test]
    fn respects_dependencies() {
        let d = diamond();
        let s = simulate(&d, 4);
        // join (task 3) starts only after both branches finish.
        assert!(s.start[3] >= s.start[2] + 40.0);
        assert!(s.start[1] >= 5.0 && s.start[2] >= 5.0);
    }

    /// Random series-parallel-ish DAG generator: layered, each task
    /// depends on a random subset of the previous layer.
    fn random_dag(layers: Vec<Vec<f64>>, seed: u64) -> Dag {
        let mut d = Dag::new();
        let mut prev: Vec<TaskId> = vec![];
        let mut rng = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        for (li, layer) in layers.into_iter().enumerate() {
            let mut cur = vec![];
            for cost in layer {
                let deps: Vec<TaskId> = prev
                    .iter()
                    .copied()
                    .filter(|_| {
                        rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                        rng >> 62 == 0 || li % 2 == 0
                    })
                    .collect();
                cur.push(d.add(cost, deps, li as u32));
            }
            prev = cur;
        }
        d
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn brent_bounds_hold(
            layer_sizes in proptest::collection::vec(1usize..6, 1..5),
            cores in 1usize..9,
            seed in 0u64..1000,
        ) {
            let layers: Vec<Vec<f64>> = layer_sizes
                .iter()
                .enumerate()
                .map(|(i, &k)| (0..k).map(|j| ((i * 7 + j * 13 + seed as usize) % 50 + 1) as f64).collect())
                .collect();
            let d = random_dag(layers, seed);
            let s = simulate(&d, cores);
            let (t1, tinf, p) = (d.work(), d.span(), cores as f64);
            // Lower bounds: T_P >= T1/P and T_P >= T∞
            prop_assert!(s.makespan >= t1 / p - 1e-9);
            prop_assert!(s.makespan >= tinf - 1e-9);
            // Greedy upper bound: T_P <= T1/P + T∞
            prop_assert!(s.makespan <= t1 / p + tinf + 1e-9);
        }

        #[test]
        fn more_cores_never_slower(
            layer_sizes in proptest::collection::vec(1usize..5, 1..4),
            seed in 0u64..1000,
        ) {
            let layers: Vec<Vec<f64>> = layer_sizes
                .iter()
                .enumerate()
                .map(|(i, &k)| (0..k).map(|j| ((i * 5 + j * 11 + seed as usize) % 30 + 1) as f64).collect())
                .collect();
            let d = random_dag(layers, seed);
            // Greedy scheduling has no anomaly on 1 vs many for these
            // monotone checks against work/span extremes.
            let one = simulate(&d, 1).makespan;
            let inf = simulate(&d, 1024).makespan;
            prop_assert!(inf <= one + 1e-9);
            prop_assert!((one - d.work()).abs() < 1e-6);
            prop_assert!((inf - d.span()).abs() < 1e-6);
        }
    }
}
