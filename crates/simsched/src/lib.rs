//! # simsched — deterministic fork-join schedule simulation
//!
//! The paper's evaluation ran on an 8-core machine; the container this
//! reproduction executes in exposes **one** CPU, so parallel speedups
//! are physically unobservable as wall-clock. This crate regenerates the
//! figures' *shape* the honest way: a calibrated cost model
//! ([`MachineModel`]), an exact task-DAG builder for balanced
//! divide-and-conquer ([`dnc`]), and a deterministic greedy scheduler
//! ([`schedule::simulate`]) whose makespans obey Brent's inequalities by
//! construction (property-tested).
//!
//! The real multithreaded implementations are still executed and
//! validated for correctness on the 1-core host; this crate only stands
//! in for the *timing* of the missing cores. See DESIGN.md's
//! substitution table.
//!
//! ```
//! use simsched::{MachineModel, predict_poly};
//!
//! let m = MachineModel::paper_8core();
//! let p = predict_poly(&m, 1 << 22, None, false);
//! assert!(p.speedup > 6.0 && p.speedup <= 8.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dag;
pub mod dnc;
pub mod machine;
pub mod predict;
pub mod replay;
pub mod schedule;

pub use dag::{Dag, TaskId, TaskNode};
pub use dnc::{build_dnc, DncCosts, FnCosts};
pub use machine::{MachineModel, FUSED_LEAF_FACTOR, ZERO_COPY_LEAF_FACTOR};
pub use predict::{
    adaptive_leaf_size, predict_map_collect, predict_poly, predict_poly_adaptive,
    predict_poly_sweep, predict_scaling, MapCostModel, PolyPrediction, JVM_ARTIFACT_FACTOR,
    JVM_ARTIFACT_SIZE,
};
pub use replay::{replay, replay_report};
pub use schedule::{simulate, Schedule};
