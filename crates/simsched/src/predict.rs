//! Workload predictions for the paper's figures.
//!
//! Combines the [`MachineModel`] cost calibration, the D&C DAG builder
//! and the greedy scheduler into per-experiment predictions:
//! [`predict_poly`] models the polynomial-evaluation benchmark of
//! Figures 3–4 (sequential stream vs parallel PowerList collect), and
//! [`predict_poly_sweep`] produces the whole 2^20..2^26 series.
//!
//! The `jvm_artifact` switch reproduces the paper's observed anomaly:
//! "the sequential execution time for the value 2^24 is almost 3 times
//! less than the sequential execution time for 2^23" — i.e. the JIT made
//! the 2^24 sequential baseline ~6× faster per element, which is what
//! produced the speedup dropout in Figure 3. The model applies that
//! factor to the sequential side only, at exactly that size, mirroring
//! the paper's explanation rather than inventing one.

use crate::dnc::{build_dnc, FnCosts};
use crate::machine::MachineModel;
use crate::schedule::simulate;

/// The factor by which the JIT sped up the 2^24 sequential run: time was
/// a third of the 2^23 time at double the size → per-element factor 6.
pub const JVM_ARTIFACT_FACTOR: f64 = 6.0;

/// The size at which the paper observed the artifact.
pub const JVM_ARTIFACT_SIZE: usize = 1 << 24;

/// One row of the Figure 3/4 series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolyPrediction {
    /// Coefficient count (polynomial degree + 1).
    pub n: usize,
    /// Predicted sequential time (ms).
    pub seq_ms: f64,
    /// Predicted parallel time on `machine.cores` cores (ms).
    pub par_ms: f64,
    /// `seq_ms / par_ms` — the quantity Figure 3 plots.
    pub speedup: f64,
    /// Scheduler utilisation of the parallel run (diagnostic).
    pub utilisation: f64,
}

/// Predicts the polynomial-evaluation benchmark at size `n`.
///
/// `leaf_size` defaults (like the library) to `n / (4 × cores)`.
pub fn predict_poly(
    machine: &MachineModel,
    n: usize,
    leaf_size: Option<usize>,
    jvm_artifact: bool,
) -> PolyPrediction {
    assert!(n >= 1);
    // Sequential baseline: a tight multiply-add loop over n coefficients.
    let mut seq_ns = n as f64 * machine.seq_elem_ns;
    if jvm_artifact && n == JVM_ARTIFACT_SIZE {
        seq_ns /= JVM_ARTIFACT_FACTOR;
    }

    // Parallel run: D&C DAG at the requested granularity, scheduled
    // greedily onto the model's cores.
    let leaf = leaf_size
        .unwrap_or_else(|| (n / (4 * machine.cores)).max(1))
        .max(1);
    let split_ns = machine.split_ns;
    let par_elem_ns = machine.par_elem_ns;
    let combine_ns = machine.combine_ns;
    let costs = FnCosts {
        split: move |_level, _size| split_ns,
        leaf: move |size| size as f64 * par_elem_ns,
        combine: move |_level, _size| combine_ns,
    };
    let (dag, _root) = build_dnc(n, leaf, &costs);
    let schedule = simulate(&dag, machine.cores);
    let par_ns = schedule.makespan + machine.submit_ns;

    PolyPrediction {
        n,
        seq_ms: seq_ns / 1e6,
        par_ms: par_ns / 1e6,
        speedup: seq_ns / par_ns,
        utilisation: schedule.utilisation(),
    }
}

/// `ceil(log2(n))` for `n ≥ 1` (0 for `n ≤ 1`) — kept local because this
/// crate depends only on `plobs`; semantics match `forkjoin::ceil_log2`.
fn ceil_log2(n: usize) -> u32 {
    n.max(1).next_power_of_two().trailing_zeros()
}

/// The leaf size an ideal demand-driven (adaptive) splitter converges to
/// on a uniform workload of `n` elements: under sustained demand every
/// node splits until the depth cap `log2(cores) + depth_slack`, floored
/// at the sequential cutoff `min_leaf`. This is the equilibrium of the
/// steal-pressure heuristic, not a wall-clock model of its transient.
pub fn adaptive_leaf_size(n: usize, cores: usize, depth_slack: u32, min_leaf: usize) -> usize {
    let cap = ceil_log2(cores) + depth_slack;
    (n >> cap.min(usize::BITS - 1)).max(min_leaf.max(1))
}

/// Predicts the polynomial benchmark under the adaptive split policy by
/// running [`predict_poly`] at the policy's equilibrium granularity
/// ([`adaptive_leaf_size`]). On a uniform workload the prediction
/// differs from the default fixed policy only through leaf granularity,
/// which is exactly what the `BENCH_splitpolicy_*` A/B rows measure.
pub fn predict_poly_adaptive(
    machine: &MachineModel,
    n: usize,
    depth_slack: u32,
    min_leaf: usize,
    jvm_artifact: bool,
) -> PolyPrediction {
    let leaf = adaptive_leaf_size(n, machine.cores, depth_slack, min_leaf);
    predict_poly(machine, n, Some(leaf), jvm_artifact)
}

/// Predicts the full sweep `2^lo ..= 2^hi` (the figures use lo=20,
/// hi=26).
pub fn predict_poly_sweep(
    machine: &MachineModel,
    lo_exp: u32,
    hi_exp: u32,
    jvm_artifact: bool,
) -> Vec<PolyPrediction> {
    (lo_exp..=hi_exp)
        .map(|k| predict_poly(machine, 1usize << k, None, jvm_artifact))
        .collect()
}

/// Cost model for the tie-vs-zip map ablation (Ablation A): the same
/// map computed under linear (tie) or cyclic (zip) data distribution.
#[derive(Debug, Clone, Copy)]
pub struct MapCostModel {
    /// Per-element map cost on contiguous data (ns).
    pub elem_ns: f64,
    /// Multiplier on leaf work when the leaf walks a strided residue
    /// class (cache-hostile cyclic distribution).
    pub strided_penalty: f64,
    /// Per-element cost of the combiner's container copy (ns).
    pub copy_ns: f64,
    /// Multiplier on combine copies for `zip_all` (interleaving writes)
    /// relative to `tie_all` (append).
    pub zip_combine_factor: f64,
    /// Split/fork cost (ns).
    pub split_ns: f64,
}

impl Default for MapCostModel {
    fn default() -> Self {
        MapCostModel {
            elem_ns: 2.5,
            strided_penalty: 2.2,
            copy_ns: 1.2,
            zip_combine_factor: 1.6,
            split_ns: 1_000.0,
        }
    }
}

/// Predicted times (ms) of a collect-based map on `cores` cores, for the
/// tie and zip decompositions — the simulated counterpart of the
/// `tie_vs_zip` bench.
pub fn predict_map_collect(
    cores: usize,
    n: usize,
    leaf_size: usize,
    model: &MapCostModel,
) -> (f64, f64) {
    let mk = |strided: bool| {
        let leaf_mult = if strided { model.strided_penalty } else { 1.0 };
        let combine_mult = if strided {
            model.zip_combine_factor
        } else {
            1.0
        };
        let (elem, copy, split) = (model.elem_ns, model.copy_ns, model.split_ns);
        let costs = FnCosts {
            split: move |_l, _s| split,
            leaf: move |s| s as f64 * elem * leaf_mult,
            // A combine at a node of size s copies the s merged elements.
            combine: move |_l, s| s as f64 * copy * combine_mult,
        };
        let (dag, _) = build_dnc(n, leaf_size.max(1), &costs);
        simulate(&dag, cores).makespan / 1e6
    };
    (mk(false), mk(true))
}

/// Predicted speedup as a function of core count at fixed size — the
/// scaling view used by the MPI ablation.
pub fn predict_scaling(machine: &MachineModel, n: usize, cores: &[usize]) -> Vec<(usize, f64)> {
    cores
        .iter()
        .map(|&c| {
            let m = (*machine).with_cores(c);
            let p = predict_poly(&m, n, None, false);
            (c, p.speedup)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m8() -> MachineModel {
        MachineModel::paper_8core()
    }

    #[test]
    fn speedup_is_near_core_count_for_large_inputs() {
        // The paper's Figure 3: "the speed-up is very good in most of
        // the considered cases, attaining for some of them almost the
        // maximum value 8".
        for k in 20..=26 {
            let p = predict_poly(&m8(), 1 << k, None, false);
            assert!(
                p.speedup > 6.0 && p.speedup <= 8.0,
                "k={k}: speedup {}",
                p.speedup
            );
        }
    }

    #[test]
    fn small_inputs_do_not_pay_off() {
        // Overheads dominate tiny collects — parallel loses.
        let p = predict_poly(&m8(), 64, None, false);
        assert!(p.speedup < 1.0, "speedup {}", p.speedup);
    }

    #[test]
    fn artifact_creates_the_dropout() {
        let clean = predict_poly_sweep(&m8(), 20, 26, false);
        let dipped = predict_poly_sweep(&m8(), 20, 26, true);
        for (c, d) in clean.iter().zip(&dipped) {
            if c.n == JVM_ARTIFACT_SIZE {
                // Sequential ~6× faster → speedup ~6× lower, and the
                // paper's "3 times less than 2^23" relation holds.
                assert!(
                    d.speedup < c.speedup / 5.0,
                    "{} vs {}",
                    d.speedup,
                    c.speedup
                );
                let prev = dipped.iter().find(|p| p.n == (1 << 23)).unwrap();
                let ratio = prev.seq_ms / d.seq_ms;
                assert!((2.5..3.5).contains(&ratio), "seq(2^23)/seq(2^24) = {ratio}");
            } else {
                assert_eq!(c.speedup, d.speedup, "artifact must only touch 2^24");
            }
        }
    }

    #[test]
    fn times_grow_with_size() {
        let sweep = predict_poly_sweep(&m8(), 20, 26, false);
        for w in sweep.windows(2) {
            assert!(w[1].seq_ms > w[0].seq_ms);
            assert!(w[1].par_ms > w[0].par_ms);
        }
        // Doubling n roughly doubles both times.
        let r = sweep[1].seq_ms / sweep[0].seq_ms;
        assert!((1.9..2.1).contains(&r));
    }

    #[test]
    fn scaling_is_monotone_and_saturating() {
        let s = predict_scaling(&m8(), 1 << 22, &[1, 2, 4, 8, 16]);
        for w in s.windows(2) {
            assert!(w[1].1 >= w[0].1 * 0.95, "{s:?}");
        }
        let (_, s1) = s[0];
        let (_, s16) = s[4];
        assert!(s1 <= 1.0 + 1e-9);
        assert!(s16 > 8.0, "16 cores should beat 8: {s16}");
    }

    #[test]
    fn explicit_leaf_size_respected() {
        // Far too coarse a leaf: only one task → no speedup.
        let p = predict_poly(&m8(), 1 << 20, Some(1 << 20), false);
        assert!(p.speedup <= 1.0 + 1e-9);
        // Finer leaves approach the default.
        let q = predict_poly(&m8(), 1 << 20, Some(1 << 14), false);
        assert!(q.speedup > 5.0);
    }

    #[test]
    fn tie_beats_zip_in_the_map_model() {
        let m = MapCostModel::default();
        let (tie, zip) = predict_map_collect(8, 1 << 20, 1 << 15, &m);
        assert!(tie < zip, "tie {tie} ms vs zip {zip} ms");
        // The gap reflects the strided penalty, bounded by it.
        assert!(zip / tie <= m.strided_penalty.max(m.zip_combine_factor) + 0.5);
    }

    #[test]
    fn map_model_times_positive_and_scale() {
        let m = MapCostModel::default();
        let (t1, z1) = predict_map_collect(8, 1 << 16, 1 << 12, &m);
        let (t2, z2) = predict_map_collect(8, 1 << 17, 1 << 13, &m);
        assert!(t1 > 0.0 && z1 > 0.0);
        assert!(t2 > t1 && z2 > z1);
    }

    #[test]
    fn utilisation_is_a_fraction() {
        let p = predict_poly(&m8(), 1 << 22, None, false);
        assert!(p.utilisation > 0.5 && p.utilisation <= 1.0);
    }

    #[test]
    fn adaptive_leaf_size_equilibrium() {
        // 2^20 elements on 8 cores, slack 4: cap = 3 + 4 = 7 → leaves of
        // 2^13, floored at min_leaf.
        assert_eq!(adaptive_leaf_size(1 << 20, 8, 4, 1024), 1 << 13);
        assert_eq!(adaptive_leaf_size(1 << 10, 8, 4, 1024), 1024);
        assert_eq!(adaptive_leaf_size(0, 1, 0, 0), 1);
    }

    #[test]
    fn adaptive_prediction_stays_within_depth_cap() {
        // Build the DAG the adaptive equilibrium implies and replay it:
        // its recorded split depth must respect log2(cores) + slack.
        let machine = m8();
        let (slack, min_leaf) = (4, 1024);
        let n = 1 << 20;
        let leaf = adaptive_leaf_size(n, machine.cores, slack, min_leaf);
        let costs = FnCosts {
            split: |_, _| 3.0,
            leaf: |s| s as f64,
            combine: |_, _| 5.0,
        };
        let (dag, _) = build_dnc(n, leaf, &costs);
        let report = crate::replay::replay_report(&dag, &simulate(&dag, machine.cores));
        let cap = ceil_log2(machine.cores) + slack;
        assert!(
            report.max_split_depth() < cap,
            "max depth {} must stay below cap {cap}",
            report.max_split_depth()
        );
        assert!(report.splits > 0);
    }

    #[test]
    fn adaptive_prediction_close_to_fixed_on_uniform_work() {
        // Uniform per-element cost: the adaptive equilibrium granularity
        // must land within 10% of the default fixed policy — the same
        // bound the live BENCH_splitpolicy_reduce acceptance uses.
        let machine = m8();
        let n = 1 << 22;
        let fixed = predict_poly(&machine, n, None, false);
        let adaptive = predict_poly_adaptive(&machine, n, 4, 1024, false);
        let ratio = adaptive.par_ms / fixed.par_ms;
        assert!(
            (0.9..=1.1).contains(&ratio),
            "adaptive/fixed = {ratio} (adaptive {} ms, fixed {} ms)",
            adaptive.par_ms,
            fixed.par_ms
        );
    }

    #[test]
    fn zero_copy_leaves_improve_parallel_side_only() {
        let base = m8();
        let fast = base.with_zero_copy_leaves();
        let n = 1 << 22;
        let p = predict_poly(&base, n, None, false);
        let q = predict_poly(&fast, n, None, false);
        // Strictly a leaf-phase change: sequential baseline untouched,
        // parallel time down, speedup up.
        assert_eq!(p.seq_ms, q.seq_ms);
        assert!(q.par_ms < p.par_ms, "{} !< {}", q.par_ms, p.par_ms);
        assert!(q.speedup > p.speedup);
    }
}
