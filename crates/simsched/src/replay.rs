//! Replaying a simulated schedule into the observability layer.
//!
//! A [`crate::schedule::simulate`] run produces the same information a
//! real execution would hand to `plobs` — which task ran where, and what
//! each split/leaf/combine cost — just with modelled nanoseconds instead
//! of measured ones. This module replays a D&C DAG plus its [`Schedule`]
//! into an [`EventSink`], so simulated runs aggregate into the exact
//! same [`RunReport`] JSON as live `jstreams`/`jplf` executions and the
//! two can be diffed row-for-row in `plbench` trajectories.
//!
//! Task kinds are recovered structurally from the series-parallel shape
//! [`crate::build_dnc`] produces: a *split* forks two children
//! (out-degree 2), a *combine* joins two subtree roots (in-degree 2),
//! and everything else is a *leaf*. Leaves are recorded under the
//! [`LeafRoute::Template`] route with `items = 0`, because the cost
//! model does not retain per-leaf element counts — only counts and
//! modelled nanoseconds are meaningful in a replayed report.

use crate::dag::Dag;
use crate::schedule::Schedule;
use plobs::{Event, EventSink, LeafRoute, RunRecorder, RunReport};

/// Replays `dag` + `schedule` into `sink`, one [`Event::PoolExecute`]
/// per task (on the simulated core that ran it) plus the matching
/// split/leaf/combine event with the task's modelled cost.
///
/// # Panics
///
/// Panics when `schedule` was not produced from `dag` (core assignments
/// shorter than the task table).
pub fn replay(dag: &Dag, schedule: &Schedule, sink: &dyn EventSink) {
    assert!(
        schedule.core.len() >= dag.len(),
        "schedule covers {} tasks but the DAG has {}",
        schedule.core.len(),
        dag.len()
    );
    // Out-degree distinguishes splits from leaves.
    let mut out_degree = vec![0usize; dag.len()];
    for (_, t) in dag.iter() {
        for &d in &t.deps {
            out_degree[d] += 1;
        }
    }
    for (id, t) in dag.iter() {
        sink.record(&Event::PoolExecute {
            worker: schedule.core[id] as u32,
        });
        let ns = t.cost as u64;
        if t.deps.len() == 2 {
            sink.record(&Event::Combine {
                depth: t.label,
                ns,
                placement: false,
            });
        } else if out_degree[id] == 2 {
            sink.record(&Event::Split {
                depth: t.label,
                adaptive: false,
            });
            sink.record(&Event::DescendNs { ns });
        } else {
            sink.record(&Event::Leaf {
                route: LeafRoute::Template,
                items: 0,
                ns,
            });
        }
    }
}

/// Convenience wrapper: replays into a call-local recorder and returns
/// the aggregated [`RunReport`]. Nothing is installed globally.
pub fn replay_report(dag: &Dag, schedule: &Schedule) -> RunReport {
    let recorder = RunRecorder::new();
    replay(dag, schedule, &recorder);
    recorder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dnc::{build_dnc, FnCosts};
    use crate::schedule::simulate;

    fn costs() -> impl crate::dnc::DncCosts {
        FnCosts {
            split: |_, _| 3.0,
            leaf: |s| s as f64,
            combine: |_, _| 5.0,
        }
    }

    #[test]
    fn replayed_counts_match_tree_shape() {
        // 64 elements, leaf 8 → 7 splits, 8 leaves, 7 combines.
        let (dag, _) = build_dnc(64, 8, &costs());
        let report = replay_report(&dag, &simulate(&dag, 4));
        assert_eq!(report.splits, 7);
        assert_eq!(report.combines, 7);
        assert_eq!(report.routes.template.leaves, 8);
        assert_eq!(report.routes.total_leaves(), 8);
        assert_eq!(report.split_depths, vec![1, 2, 4]);
        assert_eq!(report.max_split_depth(), 2);
    }

    #[test]
    fn replayed_costs_match_dag_phases() {
        let (dag, _) = build_dnc(64, 8, &costs());
        let report = replay_report(&dag, &simulate(&dag, 4));
        assert_eq!(report.descend_ns, 7 * 3);
        assert_eq!(report.leaf_ns, 64);
        assert_eq!(report.ascend_ns, 7 * 5);
    }

    #[test]
    fn every_task_is_an_execute_on_its_core() {
        let (dag, _) = build_dnc(128, 4, &costs());
        let schedule = simulate(&dag, 3);
        let report = replay_report(&dag, &schedule);
        assert_eq!(report.executed, dag.len() as u64);
        let per_core: u64 = report.per_worker.iter().map(|w| w.executed).sum();
        assert_eq!(per_core, dag.len() as u64);
        assert!(report.per_worker.len() <= 3);
    }

    #[test]
    fn single_leaf_dag_is_just_a_leaf() {
        let (dag, _) = build_dnc(4, 8, &costs());
        let report = replay_report(&dag, &simulate(&dag, 2));
        assert_eq!(report.splits, 0);
        assert_eq!(report.combines, 0);
        assert_eq!(report.routes.template.leaves, 1);
        assert_eq!(report.leaf_ns, 4);
    }

    #[test]
    fn replayed_report_serialises_to_valid_json() {
        let (dag, _) = build_dnc(256, 16, &costs());
        let report = replay_report(&dag, &simulate(&dag, 8));
        plobs::json::validate(&report.to_json()).expect("replayed report must be valid JSON");
    }
}
