//! Machine cost models.
//!
//! The container this reproduction runs in has a single CPU, so the
//! paper's 8-core wall-clock behaviour is regenerated through a
//! calibrated cost model instead (see DESIGN.md's substitution table).
//! A [`MachineModel`] carries the per-operation costs the predictions
//! are built from; [`MachineModel::paper_8core`] is the calibration used
//! for the figures — chosen to land sequential times in the same
//! hundreds-of-milliseconds range the paper's Figure 4 plots for
//! degrees 2^20..2^26 on a 2010s-era 8-core JVM machine.

/// Per-operation execution costs (nanoseconds) plus the core count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineModel {
    /// Number of cores.
    pub cores: usize,
    /// Sequential per-coefficient cost of the polynomial loop (one
    /// multiply-add plus stream-iteration overhead).
    pub seq_elem_ns: f64,
    /// Per-coefficient cost inside a parallel leaf (same arithmetic, a
    /// touch more from spliterator bookkeeping).
    pub par_elem_ns: f64,
    /// Cost of one `trySplit` + task fork (including the hooked split's
    /// synchronized update).
    pub split_ns: f64,
    /// Cost of one combiner invocation (`x.powi` + add + container
    /// plumbing).
    pub combine_ns: f64,
    /// One-time submission overhead of a parallel collect (pool
    /// hand-off, latch wait).
    pub submit_ns: f64,
}

/// Per-element leaf-cost reduction measured after the borrowed-leaf
/// (zero-copy) collect path landed: leaves run their kernels over `&[T]`
/// slices of the shared storage instead of cloning every element through
/// a boxed callback. The frameworks bench's reduce row improved by more
/// than this on the reference container; the model uses the conservative
/// end so predictions stay honest across collectors whose leaf kernels
/// do more work per element.
pub const ZERO_COPY_LEAF_FACTOR: f64 = 3.0;

/// Per-element leaf-cost reduction of the *fused-borrow* leaf route:
/// an adapted pipeline (map/filter chain) whose leaf drives the fused
/// chain push-style over the source's borrowed run instead of cloning
/// every element through nested adapter callbacks. Slightly below
/// [`ZERO_COPY_LEAF_FACTOR`] because the chain still executes its
/// per-element stages inside the loop — only the traversal machinery
/// (per-element virtual dispatch, clones, adapter bookkeeping)
/// disappears.
pub const FUSED_LEAF_FACTOR: f64 = 2.5;

impl MachineModel {
    /// The calibration used to regenerate Figures 3–4: an 8-core machine
    /// with JVM-ish per-element costs.
    pub fn paper_8core() -> Self {
        MachineModel {
            cores: 8,
            seq_elem_ns: 6.0,
            par_elem_ns: 6.5,
            split_ns: 1_200.0,
            combine_ns: 800.0,
            submit_ns: 30_000.0,
        }
    }

    /// Cost model with the zero-copy leaf path enabled: the per-element
    /// cost inside a parallel leaf drops by [`ZERO_COPY_LEAF_FACTOR`]
    /// (splitting, combining and submission costs are untouched — the
    /// change is strictly leaf-phase).
    pub fn with_zero_copy_leaves(self) -> Self {
        MachineModel {
            par_elem_ns: self.par_elem_ns / ZERO_COPY_LEAF_FACTOR,
            ..self
        }
    }

    /// Cost model with the fused-borrow leaf route enabled for adapted
    /// (map/filter) pipelines: the per-element cost inside a parallel
    /// leaf drops by [`FUSED_LEAF_FACTOR`]. As with
    /// [`MachineModel::with_zero_copy_leaves`], the change is strictly
    /// leaf-phase.
    pub fn with_fused_leaves(self) -> Self {
        MachineModel {
            par_elem_ns: self.par_elem_ns / FUSED_LEAF_FACTOR,
            ..self
        }
    }

    /// Same cost structure with a different core count (used by the
    /// scaling ablation).
    pub fn with_cores(self, cores: usize) -> Self {
        MachineModel {
            cores: cores.max(1),
            ..self
        }
    }
}

impl Default for MachineModel {
    fn default() -> Self {
        MachineModel::paper_8core()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_model_is_8_cores() {
        let m = MachineModel::paper_8core();
        assert_eq!(m.cores, 8);
        assert!(m.seq_elem_ns > 0.0);
        assert!(m.par_elem_ns >= m.seq_elem_ns);
    }

    #[test]
    fn with_cores_overrides_only_cores() {
        let m = MachineModel::paper_8core().with_cores(4);
        assert_eq!(m.cores, 4);
        assert_eq!(m.split_ns, MachineModel::paper_8core().split_ns);
        assert_eq!(MachineModel::paper_8core().with_cores(0).cores, 1);
    }

    #[test]
    fn zero_copy_only_touches_leaf_cost() {
        let m = MachineModel::paper_8core();
        let z = m.with_zero_copy_leaves();
        assert_eq!(z.par_elem_ns, m.par_elem_ns / ZERO_COPY_LEAF_FACTOR);
        assert_eq!(z.seq_elem_ns, m.seq_elem_ns);
        assert_eq!(z.split_ns, m.split_ns);
        assert_eq!(z.combine_ns, m.combine_ns);
        assert_eq!(z.submit_ns, m.submit_ns);
        assert_eq!(z.cores, m.cores);
    }

    #[test]
    fn fused_only_touches_leaf_cost() {
        let m = MachineModel::paper_8core();
        let f = m.with_fused_leaves();
        assert_eq!(f.par_elem_ns, m.par_elem_ns / FUSED_LEAF_FACTOR);
        assert_eq!(f.seq_elem_ns, m.seq_elem_ns);
        assert_eq!(f.split_ns, m.split_ns);
        assert_eq!(f.combine_ns, m.combine_ns);
        assert_eq!(f.submit_ns, m.submit_ns);
        assert_eq!(f.cores, m.cores);
        // A fused leaf still runs the chain per element, so it cannot
        // beat the unadapted zero-copy kernel in the model.
        const { assert!(FUSED_LEAF_FACTOR < ZERO_COPY_LEAF_FACTOR) };
    }

    #[test]
    fn sequential_time_scale_matches_figure_4_range() {
        // 2^26 coefficients at ~6 ns each ≈ 0.4 s — the right order of
        // magnitude for the paper's largest sequential runs (hundreds of
        // ms).
        let m = MachineModel::paper_8core();
        let t_ms = (1u64 << 26) as f64 * m.seq_elem_ns / 1e6;
        assert!((100.0..2_000.0).contains(&t_ms), "t={t_ms}ms");
    }
}
