//! Fork-join task DAGs.
//!
//! A [`Dag`] is a set of tasks with costs (nanoseconds) and precedence
//! edges. The divide-and-conquer computations of this repository produce
//! *series-parallel* DAGs (split → two subtrees → combine), but the type
//! accepts any DAG so the scheduler stays general.

/// Task identifier: index into the DAG's task table.
pub type TaskId = usize;

/// One task: a cost and its predecessors.
#[derive(Debug, Clone)]
pub struct TaskNode {
    /// Execution cost in nanoseconds.
    pub cost: f64,
    /// Tasks that must complete before this one starts.
    pub deps: Vec<TaskId>,
    /// Diagnostic label (tree level for D&C DAGs).
    pub label: u32,
}

/// A directed acyclic task graph.
#[derive(Debug, Default, Clone)]
pub struct Dag {
    tasks: Vec<TaskNode>,
}

impl Dag {
    /// Empty DAG.
    pub fn new() -> Self {
        Dag::default()
    }

    /// Adds a task with `cost` ns depending on `deps`; returns its id.
    ///
    /// # Panics
    ///
    /// Panics if a dependency id is not yet in the DAG (ids are created
    /// in topological order by construction) or the cost is negative.
    pub fn add(&mut self, cost: f64, deps: Vec<TaskId>, label: u32) -> TaskId {
        assert!(cost >= 0.0, "task cost must be non-negative");
        let id = self.tasks.len();
        for &d in &deps {
            assert!(d < id, "dependency {d} of task {id} does not exist yet");
        }
        self.tasks.push(TaskNode { cost, deps, label });
        id
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` when the DAG has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Borrow a task.
    pub fn task(&self, id: TaskId) -> &TaskNode {
        &self.tasks[id]
    }

    /// Iterate tasks in id (= topological) order.
    pub fn iter(&self) -> impl Iterator<Item = (TaskId, &TaskNode)> {
        self.tasks.iter().enumerate()
    }

    /// **Work** `T₁`: total cost of all tasks — the sequential execution
    /// time of the DAG.
    pub fn work(&self) -> f64 {
        self.tasks.iter().map(|t| t.cost).sum()
    }

    /// **Span** `T∞`: the critical-path cost — the execution time on
    /// unboundedly many cores.
    pub fn span(&self) -> f64 {
        let mut finish = vec![0.0f64; self.tasks.len()];
        let mut best: f64 = 0.0;
        for (i, t) in self.tasks.iter().enumerate() {
            let ready = t.deps.iter().map(|&d| finish[d]).fold(0.0f64, f64::max);
            finish[i] = ready + t.cost;
            best = best.max(finish[i]);
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_dag() {
        let d = Dag::new();
        assert!(d.is_empty());
        assert_eq!(d.work(), 0.0);
        assert_eq!(d.span(), 0.0);
    }

    #[test]
    fn chain_work_equals_span() {
        let mut d = Dag::new();
        let a = d.add(10.0, vec![], 0);
        let b = d.add(20.0, vec![a], 1);
        let _c = d.add(30.0, vec![b], 2);
        assert_eq!(d.work(), 60.0);
        assert_eq!(d.span(), 60.0);
    }

    #[test]
    fn diamond_span_is_longest_path() {
        let mut d = Dag::new();
        let s = d.add(5.0, vec![], 0);
        let l = d.add(10.0, vec![s], 1);
        let r = d.add(40.0, vec![s], 1);
        let _j = d.add(5.0, vec![l, r], 2);
        assert_eq!(d.work(), 60.0);
        assert_eq!(d.span(), 5.0 + 40.0 + 5.0);
    }

    #[test]
    fn independent_tasks_span_is_max() {
        let mut d = Dag::new();
        for c in [3.0, 9.0, 4.0] {
            d.add(c, vec![], 0);
        }
        assert_eq!(d.work(), 16.0);
        assert_eq!(d.span(), 9.0);
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn forward_dependency_rejected() {
        let mut d = Dag::new();
        d.add(1.0, vec![3], 0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_cost_rejected() {
        let mut d = Dag::new();
        d.add(-1.0, vec![], 0);
    }
}
