//! Divide-and-conquer DAG builder.
//!
//! Translates a balanced binary divide-and-conquer computation — the
//! shape of every PowerList function — into a task [`Dag`]: a split task
//! per interior node (the descending phase), a leaf task per
//! undecomposed sub-list, and a combine task per interior node (the
//! ascending phase). Costs come from a caller-supplied [`DncCosts`]
//! model, so the same builder serves the polynomial, map/reduce, and FFT
//! predictions.

use crate::dag::{Dag, TaskId};

/// Cost model for one divide-and-conquer computation (all nanoseconds).
pub trait DncCosts {
    /// Cost of splitting a node holding `size` elements at `level`
    /// (spliterator `try_split` + task spawn overhead).
    fn split(&self, level: u32, size: usize) -> f64;
    /// Cost of processing a leaf of `size` elements.
    fn leaf(&self, size: usize) -> f64;
    /// Cost of combining the two children of a node of `size` elements.
    fn combine(&self, level: u32, size: usize) -> f64;
}

/// Simple closure-based cost model.
pub struct FnCosts<S, L, C> {
    /// Split cost `(level, size) → ns`.
    pub split: S,
    /// Leaf cost `size → ns`.
    pub leaf: L,
    /// Combine cost `(level, size) → ns`.
    pub combine: C,
}

impl<S, L, C> DncCosts for FnCosts<S, L, C>
where
    S: Fn(u32, usize) -> f64,
    L: Fn(usize) -> f64,
    C: Fn(u32, usize) -> f64,
{
    fn split(&self, level: u32, size: usize) -> f64 {
        (self.split)(level, size)
    }
    fn leaf(&self, size: usize) -> f64 {
        (self.leaf)(size)
    }
    fn combine(&self, level: u32, size: usize) -> f64 {
        (self.combine)(level, size)
    }
}

/// Builds the DAG of a balanced binary D&C over `n` elements that stops
/// splitting at `leaf_size`. Returns the DAG and the id of the root
/// combine (or leaf) task.
pub fn build_dnc(n: usize, leaf_size: usize, costs: &impl DncCosts) -> (Dag, TaskId) {
    assert!(n >= 1, "need at least one element");
    let leaf_size = leaf_size.max(1);
    let mut dag = Dag::new();
    let root = build_node(&mut dag, n, leaf_size, 0, costs, None);
    (dag, root)
}

fn build_node(
    dag: &mut Dag,
    size: usize,
    leaf_size: usize,
    level: u32,
    costs: &impl DncCosts,
    parent_split: Option<TaskId>,
) -> TaskId {
    let deps = parent_split.map(|p| vec![p]).unwrap_or_default();
    if size <= leaf_size || size == 1 {
        return dag.add(costs.leaf(size), deps, level);
    }
    let split = dag.add(costs.split(level, size), deps, level);
    let l = build_node(dag, size / 2, leaf_size, level + 1, costs, Some(split));
    let r = build_node(
        dag,
        size - size / 2,
        leaf_size,
        level + 1,
        costs,
        Some(split),
    );
    dag.add(costs.combine(level, size), vec![l, r], level)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::simulate;

    fn unit_costs() -> impl DncCosts {
        FnCosts {
            split: |_, _| 1.0,
            leaf: |s| s as f64,
            combine: |_, _| 1.0,
        }
    }

    #[test]
    fn single_leaf_when_small() {
        let (dag, root) = build_dnc(4, 8, &unit_costs());
        assert_eq!(dag.len(), 1);
        assert_eq!(root, 0);
        assert_eq!(dag.work(), 4.0);
    }

    #[test]
    fn two_level_tree_shape() {
        // n=4, leaf=1 → 3 splits + 4 leaves + 3 combines = 10 tasks
        let (dag, _) = build_dnc(4, 1, &unit_costs());
        assert_eq!(dag.len(), 10);
        // work = 3 + 4*1 + 3 = 10
        assert_eq!(dag.work(), 10.0);
    }

    #[test]
    fn leaf_work_conserved() {
        // Total leaf cost equals n for the unit model, regardless of
        // leaf_size.
        for leaf_size in [1usize, 2, 4, 16, 64] {
            let (dag, _) = build_dnc(64, leaf_size, &unit_costs());
            let leaf_total: f64 = dag
                .iter()
                .filter(|(_, t)| t.cost > 1.0 || (t.deps.len() <= 1 && t.cost >= 1.0))
                .map(|(_, t)| t.cost)
                .sum();
            // simpler: work minus (splits+combines)
            let interior = (64 / leaf_size.max(1) - 1) as f64 * 2.0;
            assert!(
                (dag.work() - interior - 64.0).abs() < 1e-9,
                "leaf_size={leaf_size} leaf_total={leaf_total}"
            );
        }
    }

    #[test]
    fn span_grows_logarithmically() {
        let costs = unit_costs();
        let (d16, _) = build_dnc(16, 1, &costs);
        let (d64, _) = build_dnc(64, 1, &costs);
        // span = log2(n) splits + 1 leaf + log2(n) combines
        assert_eq!(d16.span(), 4.0 + 1.0 + 4.0);
        assert_eq!(d64.span(), 6.0 + 1.0 + 6.0);
    }

    #[test]
    fn parallel_speedup_emerges() {
        let costs = FnCosts {
            split: |_, _| 10.0,
            leaf: |s| s as f64 * 2.0,
            combine: |_, _| 10.0,
        };
        let (dag, _) = build_dnc(1 << 16, 1 << 12, &costs);
        let t1 = simulate(&dag, 1).makespan;
        let t8 = simulate(&dag, 8).makespan;
        let speedup = t1 / t8;
        assert!(speedup > 6.0, "expected near-linear speedup, got {speedup}");
        assert!(speedup <= 8.0 + 1e-9);
    }

    #[test]
    fn uneven_sizes_handled() {
        // Non-power-of-two n exercises the size - size/2 branch.
        let (dag, _) = build_dnc(10, 3, &unit_costs());
        assert!(dag.work() > 0.0);
        let s = simulate(&dag, 4);
        assert!(s.makespan > 0.0);
    }
}
