//! Offline stand-in for `crossbeam-deque`.
//!
//! Implements the `Injector` / `Worker` / `Stealer` / `Steal` surface the
//! fork-join pool uses, over `Mutex<VecDeque>`. The real crate is
//! lock-free; this one trades raw scalability (irrelevant on the 1-core
//! build container) for zero external dependencies while preserving the
//! scheduling semantics the pool relies on:
//!
//! * `Worker::pop` takes from the **back** (LIFO — depth-first descent);
//! * `Stealer::steal` takes from the **front** (FIFO — the victim's
//!   oldest, largest task);
//! * `Injector` is a FIFO queue; `steal_batch_and_pop` moves a small
//!   batch into the thief's deque and returns one task.
//!
//! ## plcheck instrumentation
//!
//! Every operation announces a scheduling point to the [`plcheck`]
//! deterministic checker *before* touching the queue (inert off-model:
//! one thread-local read). Because this stand-in performs each whole
//! operation under a mutex, operations are atomic — so yield-before-op
//! lets the checker explore every ordering of whole operations, which is
//! exactly this implementation's observable behaviour. Checkers layer a
//! [`plcheck::TaskAccount`] on top to assert no task is lost or
//! duplicated under concurrent pop/steal.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, PoisonError};

/// Outcome of a steal attempt.
pub enum Steal<T> {
    /// The source was observed empty.
    Empty,
    /// One task was stolen.
    Success(T),
    /// Contention; the caller should retry.
    Retry,
}

impl<T> Steal<T> {
    /// `true` for [`Steal::Success`].
    pub fn is_success(&self) -> bool {
        matches!(self, Steal::Success(_))
    }

    /// Extracts the stolen value, if any.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(t) => Some(t),
            _ => None,
        }
    }
}

fn locked<T>(m: &Mutex<VecDeque<T>>) -> std::sync::MutexGuard<'_, VecDeque<T>> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A worker-owned deque (LIFO pop end, FIFO steal end).
pub struct Worker<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Worker<T> {
    /// Creates a LIFO worker deque (the only flavour the pool uses).
    pub fn new_lifo() -> Self {
        Worker {
            queue: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    /// Pushes a task onto the owner's end.
    pub fn push(&self, task: T) {
        plcheck::yield_op("deque::worker::push");
        locked(&self.queue).push_back(task);
    }

    /// Pops the most recently pushed task (LIFO).
    pub fn pop(&self) -> Option<T> {
        plcheck::yield_op("deque::worker::pop");
        locked(&self.queue).pop_back()
    }

    /// `true` when the deque holds no tasks.
    pub fn is_empty(&self) -> bool {
        plcheck::yield_op("deque::worker::is_empty");
        locked(&self.queue).is_empty()
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        plcheck::yield_op("deque::worker::len");
        locked(&self.queue).len()
    }

    /// Creates a stealer handle for other threads.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            queue: Arc::clone(&self.queue),
        }
    }
}

/// A handle that steals from the FIFO end of a [`Worker`]'s deque.
pub struct Stealer<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Stealer<T> {
    /// Steals the oldest task of the victim.
    pub fn steal(&self) -> Steal<T> {
        plcheck::yield_op("deque::stealer::steal");
        match locked(&self.queue).pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// `true` when the victim's deque is empty.
    pub fn is_empty(&self) -> bool {
        plcheck::yield_op("deque::stealer::is_empty");
        locked(&self.queue).is_empty()
    }

    /// Number of tasks queued in the victim's deque. A concurrent
    /// snapshot: stale by the time the caller reads it, but always a
    /// value the deque actually held (never negative, never exceeding
    /// total pushes) — the bounded-staleness contract the pool's
    /// size-estimate heuristics rely on.
    pub fn len(&self) -> usize {
        plcheck::yield_op("deque::stealer::len");
        locked(&self.queue).len()
    }
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            queue: Arc::clone(&self.queue),
        }
    }
}

/// A global FIFO task queue shared by all workers.
pub struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Injector::new()
    }
}

impl<T> Injector<T> {
    /// Creates an empty injector.
    pub fn new() -> Self {
        Injector {
            queue: Mutex::new(VecDeque::new()),
        }
    }

    /// Enqueues a task.
    pub fn push(&self, task: T) {
        plcheck::yield_op("deque::injector::push");
        locked(&self.queue).push_back(task);
    }

    /// Steals one task.
    pub fn steal(&self) -> Steal<T> {
        plcheck::yield_op("deque::injector::steal");
        match locked(&self.queue).pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// Moves a small batch into `dest` and returns one task directly.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        plcheck::yield_op("deque::injector::steal_batch");
        let mut q = locked(&self.queue);
        let first = match q.pop_front() {
            Some(t) => t,
            None => return Steal::Empty,
        };
        // Migrate up to half the remainder (capped) like the real crate.
        let batch = (q.len() / 2).min(16);
        if batch > 0 {
            let mut dq = locked(&dest.queue);
            for _ in 0..batch {
                match q.pop_front() {
                    Some(t) => dq.push_back(t),
                    None => break,
                }
            }
        }
        Steal::Success(first)
    }

    /// `true` when no tasks are queued.
    pub fn is_empty(&self) -> bool {
        plcheck::yield_op("deque::injector::is_empty");
        locked(&self.queue).is_empty()
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        plcheck::yield_op("deque::injector::len");
        locked(&self.queue).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_is_lifo_stealer_is_fifo() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert!(matches!(s.steal(), Steal::Success(1)));
        assert_eq!(w.pop(), Some(3));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert!(matches!(s.steal(), Steal::Empty));
    }

    #[test]
    fn injector_batch_steal_moves_work() {
        let inj = Injector::new();
        for i in 0..10 {
            inj.push(i);
        }
        let w = Worker::new_lifo();
        let got = inj.steal_batch_and_pop(&w);
        assert!(matches!(got, Steal::Success(0)));
        assert!(!w.is_empty());
        let total = 1 + w.len() + inj.len();
        assert_eq!(total, 10);
    }

    #[test]
    fn empty_injector_reports_empty() {
        let inj: Injector<u8> = Injector::new();
        assert!(inj.is_empty());
        assert!(matches!(inj.steal(), Steal::Empty));
        let w = Worker::new_lifo();
        assert!(matches!(inj.steal_batch_and_pop(&w), Steal::Empty));
    }
}
