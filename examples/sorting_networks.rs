//! Sorting networks from the PowerList catalogue: Batcher's odd-even
//! merge sort and bitonic sort, sequential and fork-join parallel,
//! validated against the standard library.
//!
//! ```sh
//! cargo run --release --example sorting_networks [exponent]
//! ```

use forkjoin::ForkJoinPool;
use plalgo::{batcher_sort, batcher_sort_par, bitonic_sort};
use powerlist::tabulate;
use std::time::Instant;

fn main() {
    let k: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(14);
    let n = 1usize << k;
    println!("Sorting 2^{k} pseudo-random integers with PowerList networks");

    let mut state = 12345u64;
    let data = tabulate(n, |_| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 30) as i64 - (1 << 33)
    })
    .unwrap();

    let mut expected = data.clone().into_vec();
    let t0 = Instant::now();
    expected.sort();
    println!("std sort      : {:>9.3} ms", ms(t0));

    let t0 = Instant::now();
    let b = batcher_sort(&data);
    println!("batcher (seq) : {:>9.3} ms", ms(t0));
    assert_eq!(b.as_slice(), &expected[..]);

    let pool = ForkJoinPool::with_default_parallelism();
    let t0 = Instant::now();
    let bp = batcher_sort_par(&pool, &data, 1 << 10);
    println!(
        "batcher (par) : {:>9.3} ms  ({} workers)",
        ms(t0),
        pool.threads()
    );
    assert_eq!(bp.as_slice(), &expected[..]);

    let t0 = Instant::now();
    let bi = bitonic_sort(&data);
    println!("bitonic (seq) : {:>9.3} ms", ms(t0));
    assert_eq!(bi.as_slice(), &expected[..]);

    let m = pool.metrics();
    println!(
        "pool metrics: {} joins ({} stolen), {} executed tasks",
        m.joins, m.joins_stolen, m.executed
    );
    println!("all sorts agree with std ✓");
}

fn ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}
