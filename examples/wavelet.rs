//! Eq.-5 functions in action: a Walsh–Hadamard ("Haar-like") transform
//! used for simple signal compression.
//!
//! The paper's Eq. 5 shape — `f(p | q) = f(p ⊕ q) | f(p ⊗ q)` — covers
//! functions whose **descending phase transforms the data**. With
//! `⊕ = +` and `⊗ = −` this is the fast Walsh–Hadamard transform; this
//! example transforms a signal, truncates small coefficients, inverts
//! (WHT is its own inverse up to 1/n) and reports the reconstruction
//! error — a miniature compression pipeline on top of the JPLF
//! executors.
//!
//! ```sh
//! cargo run --release --example wavelet
//! ```

use jplf::{Executor, ForkJoinExecutor, SequentialExecutor};
use plalgo::TieDescentFunction;
use powerlist::{tabulate, PowerList};

const N: usize = 1 << 10;

fn wht(exec: &impl Executor, signal: &PowerList<f64>) -> PowerList<f64> {
    let f = TieDescentFunction::new(|a: &f64, b: &f64| a + b, |a: &f64, b: &f64| a - b);
    exec.execute(&f, &signal.clone().view())
}

fn main() {
    // A piecewise-smooth signal: two plateaus plus a gentle ramp.
    let signal = tabulate(N, |i| {
        let t = i as f64 / N as f64;
        if t < 0.3 {
            2.0
        } else if t < 0.7 {
            -1.0 + 0.5 * t
        } else {
            1.5
        }
    })
    .unwrap();

    let seq = SequentialExecutor::new();
    let par = ForkJoinExecutor::new(
        std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(2),
        64,
    );

    // Transform (both executors must agree).
    let coeffs = wht(&seq, &signal);
    assert_eq!(wht(&par, &signal), coeffs);
    println!("WHT of {N}-sample signal computed (sequential == fork-join ✓)");

    // Keep only the largest 5% of coefficients.
    let mut mags: Vec<f64> = coeffs.iter().map(|c| c.abs()).collect();
    mags.sort_by(|a, b| b.partial_cmp(a).unwrap());
    let threshold = mags[N / 20];
    let kept = coeffs.iter().filter(|c| c.abs() >= threshold).count();
    let truncated = PowerList::from_vec(
        coeffs
            .iter()
            .map(|&c| if c.abs() >= threshold { c } else { 0.0 })
            .collect(),
    )
    .unwrap();
    println!("kept {kept}/{N} coefficients (threshold {threshold:.3})");

    // Inverse: WHT again, scaled by 1/n.
    let back_raw = wht(&par, &truncated);
    let back: Vec<f64> = back_raw.iter().map(|x| x / N as f64).collect();

    let rmse = (signal
        .iter()
        .zip(&back)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        / N as f64)
        .sqrt();
    let energy = (signal.iter().map(|x| x * x).sum::<f64>() / N as f64).sqrt();
    println!(
        "reconstruction RMSE: {rmse:.4} ({:.2}% of signal RMS)",
        100.0 * rmse / energy
    );
    assert!(
        rmse / energy < 0.15,
        "5% of WHT coefficients should capture a piecewise signal"
    );

    // Sanity: without truncation the inverse is exact.
    let exact: Vec<f64> = wht(&seq, &coeffs).iter().map(|x| x / N as f64).collect();
    let max_err = signal
        .iter()
        .zip(&exact)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("lossless roundtrip max error: {max_err:.2e}");
    assert!(max_err < 1e-9);
    println!("compression pipeline ✓");
}
