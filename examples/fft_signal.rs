//! Signal processing with the PowerList FFT (paper, Eq. 3): synthesise a
//! composite tone, locate its spectral peaks, and reconstruct the signal
//! with the inverse transform.
//!
//! ```sh
//! cargo run --release --example fft_signal
//! ```

use plalgo::{fft_seq, fft_stream, ifft, Complex};
use powerlist::tabulate;

const N: usize = 1 << 12; // 4096 samples
const SAMPLE_RATE: f64 = 4096.0; // Hz → bin k is k Hz

fn main() {
    // A 440 Hz tone + a quieter 1031 Hz overtone + a DC offset.
    let signal = tabulate(N, |i| {
        let t = i as f64 / SAMPLE_RATE;
        let s = 1.0 * (2.0 * std::f64::consts::PI * 440.0 * t).sin()
            + 0.4 * (2.0 * std::f64::consts::PI * 1031.0 * t).sin()
            + 0.25;
        Complex::from_re(s)
    })
    .unwrap();

    // Transform — sequential recursion and the parallel streams route
    // must agree.
    let spectrum = fft_seq(&signal);
    let spectrum_stream = fft_stream(signal.clone());
    let max_dev = spectrum
        .iter()
        .zip(spectrum_stream.iter())
        .map(|(a, b)| (*a - *b).abs())
        .fold(0.0f64, f64::max);
    println!("fft_seq vs fft_stream max deviation: {max_dev:.3e}");
    assert!(max_dev < 1e-6);

    // Peak picking over the first half (real signal → symmetric).
    let mut mags: Vec<(usize, f64)> = spectrum
        .iter()
        .take(N / 2)
        .enumerate()
        .map(|(k, z)| (k, z.abs() / N as f64))
        .collect();
    mags.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("dominant bins:");
    for (k, m) in mags.iter().take(3) {
        println!(
            "  {:>5} Hz  amplitude {:.3}",
            k,
            2.0 * m / if *k == 0 { 2.0 } else { 1.0 }
        );
    }
    let top: Vec<usize> = mags.iter().take(3).map(|(k, _)| *k).collect();
    assert!(top.contains(&440) && top.contains(&1031) && top.contains(&0));

    // Inverse transform reconstructs the time-domain signal.
    let back = ifft(&spectrum);
    let err = back
        .iter()
        .zip(signal.iter())
        .map(|(a, b)| (*a - *b).abs())
        .fold(0.0f64, f64::max);
    println!("ifft reconstruction max error: {err:.3e}");
    assert!(err < 1e-9);
    println!("spectral analysis + reconstruction ✓");
}
