//! The paper's benchmark scenario end-to-end: evaluating a polynomial
//! given by its coefficient PowerList at a point, through every
//! execution route, with the timing protocol of the evaluation section.
//!
//! ```sh
//! cargo run --release --example polynomial [exponent]
//! ```
//!
//! The optional exponent selects the coefficient count `2^k`
//! (default 18; the paper sweeps 20..26 — see the `figures` binary in
//! `plbench` for the full reproduction with the simulated-8-core
//! series).

use jplf::Executor;
use std::time::Instant;

fn main() {
    let k: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(18);
    let n = 1usize << k;
    let x = 0.9999993;

    println!("Polynomial evaluation, n = 2^{k} coefficients, x = {x}");

    // The paper's workload: random coefficients.
    let coeffs = plbench_gen(n);

    // Reference: Horner.
    let t0 = Instant::now();
    let expected = plalgo::horner(coeffs.as_slice(), x);
    println!(
        "horner (reference)     : {:>10.3} ms  -> {expected:.6}",
        ms(t0)
    );

    // Paper baseline: simple sequential stream computation.
    let t0 = Instant::now();
    let seq = plalgo::eval_seq_stream(coeffs.clone(), x);
    println!("sequential stream      : {:>10.3} ms  -> {seq:.6}", ms(t0));

    // The adaptation: hooked ZipSpliterator + PolynomialCollector on a
    // parallel stream (the paper's Section IV listing).
    let t0 = Instant::now();
    let par = plalgo::eval_par_stream(coeffs.clone(), x);
    println!("parallel stream collect: {:>10.3} ms  -> {par:.6}", ms(t0));

    // JPLF fork-join executor with the vp PowerFunction (Eq. 4).
    let exec = jplf::ForkJoinExecutor::new(
        std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(2),
        (n / 16).max(1),
    );
    let view = coeffs.clone().view();
    let t0 = Instant::now();
    let jplf_val = exec.execute(&plalgo::VpFunction::new(x), &view);
    println!(
        "JPLF fork-join executor: {:>10.3} ms  -> {jplf_val:.6}",
        ms(t0)
    );

    // Simulated MPI executor.
    let t0 = Instant::now();
    let mpi_val = jplf::MpiExecutor::new(4).execute(&plalgo::VpFunction::new(x), &view);
    println!(
        "JPLF simulated MPI (4) : {:>10.3} ms  -> {mpi_val:.6}",
        ms(t0)
    );

    for (name, v) in [
        ("seq", seq),
        ("par", par),
        ("jplf", jplf_val),
        ("mpi", mpi_val),
    ] {
        let tol = 1e-9 * (1.0 + expected.abs());
        assert!(
            (v - expected).abs() < tol.max(1e-6),
            "{name} diverged: {v} vs {expected}"
        );
    }
    println!("all routes agree ✓");

    // Instrumented re-run: one recorded pass over the parallel stream
    // collect, the JPLF fork-join executor and the MPI simulation — all
    // three feed the same event sink, so one report covers the whole
    // tree. The timed runs above executed with no sink installed.
    let (_, report) = plobs::recorded(|| {
        plalgo::eval_par_stream(coeffs.clone(), x);
        exec.execute(&plalgo::VpFunction::new(x), &view);
        jplf::MpiExecutor::new(4).execute(&plalgo::VpFunction::new(x), &view);
    });
    println!("\nrun report (parallel stream + JPLF fork-join + MPI-sim):");
    println!("{}", report.tree_summary());
    if !report.per_rank.is_empty() {
        let sends: u64 = report.per_rank.iter().map(|r| r.sends).sum();
        let bytes: u64 = report.per_rank.iter().map(|r| r.send_bytes).sum();
        println!(
            "  mpi: {} ranks, {sends} messages, {bytes} bytes",
            report.per_rank.len()
        );
    }
    // The smoke test in ci.sh greps for this line: the report must
    // serialise to strictly valid JSON.
    match plobs::json::validate(&report.to_json()) {
        Ok(()) => println!("run report JSON: valid"),
        Err(e) => panic!("malformed RunReport JSON: {e}"),
    }

    // A mapped pipeline over the same coefficients: `Stream::map`
    // extends a fused chain over the untouched source, so every leaf
    // must take the fused-borrow route — never the cloning drain.
    let scaled: Vec<f64> = coeffs.iter().copied().collect();
    let (sum, report) = plobs::recorded(move || {
        jstreams::stream_support(jstreams::SliceSpliterator::new(scaled), true)
            .map(|c| c * 0.5 + 1.0)
            .reduce(0.0f64, |a, b| a + b)
    });
    assert!(sum.is_finite());
    assert_eq!(
        report.routes.cloning_drain.leaves, 0,
        "mapped pipeline fell back to the cloning drain"
    );
    assert!(
        report.routes.fused_borrow.leaves > 0,
        "mapped pipeline took no fused-borrow leaves"
    );
    // ci.sh greps for this line as the fused-route gate.
    println!(
        "mapped pipeline route: fused_borrow x{} (cloning 0)",
        report.routes.fused_borrow.leaves
    );
}

fn ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

/// Seeded random coefficients in [-1, 1] (inline so the example only
/// depends on the public crates).
fn plbench_gen(n: usize) -> powerlist::PowerList<f64> {
    let mut state = 0x9E3779B97F4A7C15u64;
    powerlist::tabulate(n, |_| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    })
    .unwrap()
}
