//! Quickstart: the PowerList algebra, the streams adaptation, and the
//! JPLF executors in one tour.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use jplf::{Decomp, Executor, ForkJoinExecutor, SequentialExecutor};
use jstreams::prelude::*;
use powerlist::{tabulate, PowerList};

fn main() {
    // --- 1. The algebra: tie and zip -------------------------------
    let p = PowerList::from_vec(vec![0, 1, 2, 3]).unwrap();
    let q = PowerList::from_vec(vec![4, 5, 6, 7]).unwrap();
    println!("p             = {:?}", p.as_slice());
    println!("q             = {:?}", q.as_slice());
    println!(
        "tie(p, q)     = {:?}",
        PowerList::tie(p.clone(), q.clone()).as_slice()
    );
    println!(
        "zip(p, q)     = {:?}",
        PowerList::zip(p.clone(), q.clone()).as_slice()
    );

    // inv needs both operators: inv(p | q) = inv(p) ♮ inv(q)
    let r = tabulate(8, |i| i).unwrap();
    println!(
        "inv(0..8)     = {:?}",
        powerlist::perm::inv_indexed(&r).as_slice()
    );

    // --- 2. The streams adaptation ---------------------------------
    // The paper's identity example: a ZipSpliterator-driven parallel
    // stream collected with zipAll reproduces the source.
    let data = tabulate(1 << 10, |i| i as f64 * 0.5).unwrap();
    let identity = collect_powerlist(
        power_stream(data.clone(), Decomposition::Zip),
        Decomposition::Zip,
    )
    .unwrap();
    assert_eq!(identity, data);
    println!("\nidentity collect over 2^10 elements: source reproduced ✓");

    // map as a collect whose accumulator applies a function first:
    let doubled = plalgo::map_stream(data.clone(), Decomposition::Zip, |x| x * 2.0);
    assert_eq!(doubled[3], data[3] * 2.0);
    println!("map-as-collect: doubled 2^10 elements ✓");

    // reduce through the same machinery:
    let total = plalgo::reduce_stream(data.clone(), Decomposition::Tie, 0.0, |a, b| a + b);
    println!("reduce: sum = {total}");

    // --- 3. Short-circuiting search terminals -----------------------
    // Quantifiers stop the whole tree the moment the answer is known:
    // a Found cancellation prunes every subtree behind the hit.
    let ints: Vec<i64> = (0..(1 << 14)).collect();
    let hit =
        stream_support(SliceSpliterator::new(ints.clone()), true).any_match(|x: &i64| *x == 12_000);
    let first = stream_support(SliceSpliterator::new(ints.clone()), true)
        .filter(|x: &i64| x % 4_097 == 0 && *x > 0)
        .find_first();
    assert!(hit && first == Some(4_097));
    println!("search terminals: any_match ✓, find_first = {first:?} ✓");

    // The fallible twins take an ExecConfig like every other terminal.
    let cfg = ExecConfig::par().with_leaf_size(256);
    let none = stream_support(SliceSpliterator::new(ints), true)
        .try_none_match(|x: &i64| *x < 0, &cfg)
        .expect("no deadline, no cancel: must succeed");
    assert!(none);
    println!("try_none_match under ExecConfig ✓");

    // --- 4. JPLF executors ------------------------------------------
    // One function definition, three execution strategies.
    let sum_fn = plalgo::ReduceFunction::new(Decomp::Tie, |a: &f64, b: &f64| a + b);
    let view = data.view();
    let seq = SequentialExecutor::new().execute(&sum_fn, &view);
    let par = ForkJoinExecutor::new(num_threads(), 64).execute(&sum_fn, &view);
    let mpi = jplf::MpiExecutor::new(4).execute(&sum_fn, &view);
    assert!((seq - par).abs() < 1e-6 && (seq - mpi).abs() < 1e-6);
    println!("JPLF executors (sequential / fork-join / simulated MPI) agree: {seq} ✓");
}

fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
}
