//! PLists and multi-way divide-and-conquer — the paper's future-work
//! item ("the possibility to include also the PList extension … is not
//! possible (yet)" for Java's binary `trySplit`), implemented here.
//!
//! Demonstrates the n-way tie/zip algebra, the quantified constructor
//! forms, and the simulated-MPI executor distributing a PowerList
//! function over 8 ranks.
//!
//! ```sh
//! cargo run --release --example multiway_plist
//! ```

use jplf::{Decomp, Executor, MpiExecutor};
use powerlist::plist::tie_quantified;
use powerlist::{PList, PowerList};

fn main() {
    // --- The paper's Section II example -----------------------------
    // p.i = [3i, 3i+1, 3i+2]:
    let parts: Vec<PList<i32>> = (0..3)
        .map(|i| PList::from_vec(vec![i * 3, i * 3 + 1, i * 3 + 2]).unwrap())
        .collect();
    let tied = PList::tie_n(parts.clone()).unwrap();
    let zipped = PList::zip_n(parts).unwrap();
    println!("[ | i : i ∈ 3̄ : p.i ] = {:?}", tied.as_slice());
    println!("[ ♮ i : i ∈ 3̄ : p.i ] = {:?}", zipped.as_slice());
    assert_eq!(tied.as_slice(), &[0, 1, 2, 3, 4, 5, 6, 7, 8]);
    assert_eq!(zipped.as_slice(), &[0, 3, 6, 1, 4, 7, 2, 5, 8]);

    // Quantified forms build the same lists from a generator:
    let tied2 = tie_quantified(3, |i| {
        PList::from_vec(vec![i as i32 * 3, i as i32 * 3 + 1, i as i32 * 3 + 2]).unwrap()
    })
    .unwrap();
    assert_eq!(tied2, tied);

    // n-way deconstruction inverts construction:
    let back = zipped.unzip_n(3).unwrap();
    println!("unzip_n(3) recovered {} parts of length 3 ✓", back.len());

    // --- Multi-way distribution via the MPI executor ----------------
    // An 8-rank simulated cluster computing a reduction: the plan/
    // scatter/combine path is the multi-way distribution JPLF's MPI
    // executors perform.
    let data = powerlist::tabulate(1 << 12, |i| i as i64).unwrap();
    let sum_fn = plalgo::ReduceFunction::new(Decomp::Tie, |a: &i64, b: &i64| a + b);
    let result = MpiExecutor::new(8).execute(&sum_fn, &data.clone().view());
    let expected: i64 = (0..(1 << 12)).sum();
    assert_eq!(result, expected);
    println!("MPI executor, 8 simulated ranks: sum(0..2^12) = {result} ✓");

    // A PowerList is a PList; the conversion is shape-checked:
    let pl: PList<i64> = data.into();
    let pow: PowerList<i64> = pl.into_powerlist().unwrap();
    println!(
        "PList ↔ PowerList round-trip for 2^12 elements ✓ (len {})",
        pow.len()
    );
}
