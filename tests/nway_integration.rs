//! Integration tests of the multi-way (PList) stack: the paper's
//! future-work extension end-to-end — n-way spliterators feeding n-way
//! collects, and PList functions on the fork-join pool, cross-checked
//! against the binary machinery where both apply.

use forkjoin::ForkJoinPool;
use jplf::{
    compute_plist_parallel, compute_plist_sequential, Decomp, Executor, NWayReduce,
    SequentialExecutor,
};
use jstreams::{
    collect_nway_par, collect_nway_seq, NTieSpliterator, NWayDecomposition, NZipSpliterator,
    PListCollector,
};
use powerlist::{PList, PowerList};
use std::sync::Arc;

fn plist(n: usize) -> PList<i64> {
    PList::from_vec((0..n as i64).map(|i| (i * 29 + 5) % 83).collect()).unwrap()
}

#[test]
fn nway_identity_collect_across_arities_and_leaves() {
    let pool = ForkJoinPool::new(2);
    for n in [1usize, 3, 9, 27, 81, 12, 36] {
        let p = plist(n);
        for arity in [2usize, 3, 4] {
            for leaf in [1usize, 3, 10] {
                let tie = collect_nway_par(
                    &pool,
                    NTieSpliterator::over(p.clone()),
                    Arc::new(PListCollector::new(NWayDecomposition::Tie)),
                    arity,
                    leaf,
                );
                assert_eq!(tie, p, "tie n={n} arity={arity} leaf={leaf}");
                let zip = collect_nway_par(
                    &pool,
                    NZipSpliterator::over(p.clone()),
                    Arc::new(PListCollector::new(NWayDecomposition::Zip)),
                    arity,
                    leaf,
                );
                assert_eq!(zip, p, "zip n={n} arity={arity} leaf={leaf}");
            }
        }
    }
}

#[test]
fn nway_seq_equals_par() {
    let pool = ForkJoinPool::new(3);
    let p = plist(54); // 2 · 27
    let seq = collect_nway_seq(
        NTieSpliterator::over(p.clone()),
        &PListCollector::new(NWayDecomposition::Tie),
    );
    let par = collect_nway_par(
        &pool,
        NTieSpliterator::over(p.clone()),
        Arc::new(PListCollector::new(NWayDecomposition::Tie)),
        3,
        2,
    );
    assert_eq!(seq, par);
    assert_eq!(seq, p);
}

#[test]
fn plist_function_agrees_with_binary_on_powers_of_two() {
    // On power-of-two lengths with arity 2, the PList machinery must
    // agree with the binary PowerFunction machinery.
    let pow = powerlist::tabulate(256, |i| (i as i64 * 13) % 47).unwrap();
    let binary = SequentialExecutor::new().execute(
        &plalgo::ReduceFunction::new(Decomp::Tie, |a: &i64, b: &i64| a + b),
        &pow.clone().view(),
    );
    let nway2 = compute_plist_sequential(
        &NWayReduce::new(2, |a: &i64, b: &i64| a + b),
        &PList::from(pow.clone()),
    );
    assert_eq!(binary, nway2);

    // And a 4-way split of the same data computes the same sum.
    let nway4 = compute_plist_sequential(
        &NWayReduce::new(4, |a: &i64, b: &i64| a + b),
        &PList::from(pow),
    );
    assert_eq!(binary, nway4);
}

#[test]
fn plist_parallel_full_stack() {
    let pool = ForkJoinPool::new(3);
    let p = plist(243); // 3^5: pure 3-way tree
    let f = NWayReduce::new(3, |a: &i64, b: &i64| a + b);
    let expected: i64 = p.iter().sum();
    assert_eq!(compute_plist_sequential(&f, &p), expected);
    for leaf in [1usize, 9, 81, 300] {
        assert_eq!(
            compute_plist_parallel(&pool, &f, &p, leaf),
            expected,
            "leaf={leaf}"
        );
    }
}

#[test]
fn paper_quantified_forms_through_streams() {
    // Build [ ♮ i : i ∈ 3̄ : p.i ] with the algebra, then verify the
    // n-way zip spliterator deconstructs it back into the p.i.
    let parts: Vec<PList<i64>> = (0..3)
        .map(|i| PList::from_vec(vec![i * 3, i * 3 + 1, i * 3 + 2]).unwrap())
        .collect();
    let zipped = PList::zip_n(parts.clone()).unwrap();
    use jstreams::{ItemSource, NWaySpliterator};
    let split = NZipSpliterator::over(zipped).try_split_n(3).ok().unwrap();
    for (mut s, expected) in split.into_iter().zip(parts) {
        let mut got = vec![];
        s.for_each_remaining(&mut |x| got.push(x));
        assert_eq!(got, expected.into_vec());
    }
}

#[test]
fn powerlist_plist_interop() {
    // A PowerList flows into the PList machinery and back.
    let pow = powerlist::tabulate(64, |i| i as i64).unwrap();
    let pl: PList<i64> = pow.clone().into();
    let sum = compute_plist_sequential(&NWayReduce::new(4, |a: &i64, b: &i64| a + b), &pl);
    assert_eq!(sum, (0..64).sum::<i64>());
    let back: PowerList<i64> = pl.into_powerlist().unwrap();
    assert_eq!(back, pow);
}

// ---------------------------------------------------------------------
// Degenerate shapes: single segments, singleton lists, arity > length
// ---------------------------------------------------------------------

/// The 1-way decompositions are identities: `tie_n`/`zip_n` of one part
/// reproduce the part, and `untie_n(1)`/`unzip_n(1)` give it back as
/// the single segment.
#[test]
fn one_way_decomposition_is_the_identity() {
    let p = plist(12);
    assert_eq!(PList::tie_n(vec![p.clone()]).unwrap(), p);
    assert_eq!(PList::zip_n(vec![p.clone()]).unwrap(), p);
    let tied = p.clone().untie_n(1).unwrap();
    assert_eq!(tied, vec![p.clone()]);
    let zipped = p.clone().unzip_n(1).unwrap();
    assert_eq!(zipped, vec![p]);
}

/// A singleton PList through the whole n-way stack: nothing can split
/// (any requested arity exceeds the single element), so every drain is
/// one sequential leaf — and the answers still agree with the spec.
#[test]
fn singleton_plist_through_the_nway_stack() {
    let pool = ForkJoinPool::new(2);
    let p = PList::from_vec(vec![17i64]).unwrap();
    for arity in [2usize, 3, 7] {
        for (label, got) in [
            (
                "tie",
                collect_nway_par(
                    &pool,
                    NTieSpliterator::over(p.clone()),
                    Arc::new(PListCollector::new(NWayDecomposition::Tie)),
                    arity,
                    1,
                ),
            ),
            (
                "zip",
                collect_nway_par(
                    &pool,
                    NZipSpliterator::over(p.clone()),
                    Arc::new(PListCollector::new(NWayDecomposition::Zip)),
                    arity,
                    1,
                ),
            ),
        ] {
            assert_eq!(got, p, "{label} singleton arity={arity}");
        }
    }
    let f = NWayReduce::new(3, |a: &i64, b: &i64| a + b);
    assert_eq!(compute_plist_sequential(&f, &p), 17);
    assert_eq!(compute_plist_parallel(&pool, &f, &p, 1), 17);
}

/// Arity larger than the list: a length-4 list asked for 8-way
/// progress must still collect correctly through both decompositions
/// (splits degrade to whatever the length supports).
#[test]
fn arity_exceeding_length_still_collects() {
    let pool = ForkJoinPool::new(2);
    let p = plist(4);
    for (label, decomp) in [
        ("tie", NWayDecomposition::Tie),
        ("zip", NWayDecomposition::Zip),
    ] {
        let got = match decomp {
            NWayDecomposition::Tie => collect_nway_par(
                &pool,
                NTieSpliterator::over(p.clone()),
                Arc::new(PListCollector::new(decomp)),
                8,
                1,
            ),
            NWayDecomposition::Zip => collect_nway_par(
                &pool,
                NZipSpliterator::over(p.clone()),
                Arc::new(PListCollector::new(decomp)),
                8,
                1,
            ),
        };
        assert_eq!(got, p, "{label} arity 8 over length 4");
    }
}

/// `try_split_n` on a singleton must refuse rather than manufacture
/// empty segments: the spliterator stays whole and drains its one
/// element.
#[test]
fn singleton_refuses_to_split_n() {
    use jstreams::{ItemSource, NWaySpliterator};
    let p = PList::from_vec(vec![99i64]).unwrap();
    // A refused split hands the spliterator back in the Err; it must
    // still drain its element afterwards.
    let tie = NTieSpliterator::over(p.clone());
    let mut tie = match tie.try_split_n(2) {
        Err(whole) => whole,
        Ok(_) => panic!("tie singleton must not 2-split"),
    };
    let mut got = vec![];
    tie.for_each_remaining(&mut |x| got.push(x));
    assert_eq!(got, vec![99]);
    let zip = NZipSpliterator::over(p);
    let mut zip = match zip.try_split_n(3) {
        Err(whole) => whole,
        Ok(_) => panic!("zip singleton must not 3-split"),
    };
    let mut got = vec![];
    zip.for_each_remaining(&mut |x| got.push(x));
    assert_eq!(got, vec![99]);
}
