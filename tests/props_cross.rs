//! Cross-crate property tests: random workloads through the full stack.

use jstreams::{collect_powerlist, power_stream, Decomposition};
use powerlist::PowerList;
use proptest::prelude::*;

fn powerlist_f64(max_k: u32) -> impl Strategy<Value = PowerList<f64>> {
    (0..=max_k)
        .prop_flat_map(|k| proptest::collection::vec(-1.0f64..1.0, 1 << k as usize))
        .prop_map(|v| PowerList::from_vec(v).unwrap())
}

fn powerlist_i64(max_k: u32) -> impl Strategy<Value = PowerList<i64>> {
    (0..=max_k)
        .prop_flat_map(|k| proptest::collection::vec(-1000i64..1000, 1 << k as usize))
        .prop_map(|v| PowerList::from_vec(v).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The paper's identity verification, as a law: for any PowerList
    /// and any matching (decomposition, combiner) pair, the parallel
    /// collect reproduces the source.
    #[test]
    fn identity_collect_is_identity(p in powerlist_i64(9), zip in any::<bool>(),
                                    leaf in 1usize..64) {
        let d = if zip { Decomposition::Zip } else { Decomposition::Tie };
        let out = collect_powerlist(
            power_stream(p.clone(), d).with_leaf_size(leaf),
            d,
        ).unwrap();
        prop_assert_eq!(out, p);
    }

    /// Parallel polynomial evaluation equals Horner for random
    /// coefficients and points.
    #[test]
    fn poly_matches_horner(p in powerlist_f64(10), x in -1.1f64..1.1) {
        let expected = plalgo::horner(p.as_slice(), x);
        let got = plalgo::eval_par_stream(p, x);
        let tol = 1e-9 * (1.0 + expected.abs());
        prop_assert!((got - expected).abs() <= tol, "{got} vs {expected}");
    }

    /// Streams map equals the sequential specification under both
    /// decompositions.
    #[test]
    fn stream_map_matches_spec(p in powerlist_i64(9), c in -5i64..5, zip in any::<bool>()) {
        let d = if zip { Decomposition::Zip } else { Decomposition::Tie };
        let spec = powerlist::ops::map(&p, |x| x * c);
        prop_assert_eq!(plalgo::map_stream(p, d, move |x| x * c), spec);
    }

    /// Streams reduce equals the fold, both decompositions (addition is
    /// commutative so zip order changes are invisible).
    #[test]
    fn stream_reduce_matches_fold(p in powerlist_i64(9), zip in any::<bool>()) {
        let d = if zip { Decomposition::Zip } else { Decomposition::Tie };
        let spec = powerlist::ops::reduce(&p, |a, b| a + b);
        prop_assert_eq!(plalgo::reduce_stream(p, d, 0, |a, b| a + b), spec);
    }

    /// FFT followed by inverse FFT is the identity (numerically).
    #[test]
    fn fft_roundtrip(p in powerlist_f64(8)) {
        let signal = powerlist::ops::map(&p, |&x| plalgo::Complex::from_re(x));
        let back = plalgo::ifft(&plalgo::fft_seq(&signal));
        for (a, b) in back.iter().zip(signal.iter()) {
            prop_assert!(a.approx_eq(*b, 1e-8));
        }
    }

    /// Batcher and bitonic both sort any input.
    #[test]
    fn sorts_sort(p in powerlist_i64(9)) {
        let mut expected = p.clone().into_vec();
        expected.sort();
        prop_assert_eq!(plalgo::batcher_sort(&p).into_vec(), expected.clone());
        prop_assert_eq!(plalgo::bitonic_sort(&p).into_vec(), expected);
    }

    /// Ladner–Fischer scan equals the running fold.
    #[test]
    fn scan_matches_fold(p in powerlist_i64(9)) {
        let spec = plalgo::scan_spec(p.as_slice(), |a, b| a + b);
        prop_assert_eq!(plalgo::scan_seq(&p, 0, |a, b| a + b).into_vec(), spec);
    }

    /// The simulator's schedules always obey Brent's inequalities for
    /// the D&C DAGs the predictions are built from.
    #[test]
    fn predictions_obey_brent(k in 6u32..16, cores in 1usize..12) {
        let n = 1usize << k;
        let machine = simsched::MachineModel::paper_8core().with_cores(cores);
        let pred = simsched::predict_poly(&machine, n, None, false);
        // Speedup can never exceed core count (+ tolerance for the
        // slightly cheaper sequential per-element constant).
        prop_assert!(pred.speedup <= cores as f64 + 1e-9,
                     "speedup {} cores {}", pred.speedup, cores);
        prop_assert!(pred.par_ms > 0.0 && pred.seq_ms > 0.0);
    }
}
