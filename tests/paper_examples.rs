//! Integration tests encoding the paper's own listings and worked
//! examples, end-to-end across crates.

use jplf::{Executor, SequentialExecutor};
use jstreams::{
    collect_powerlist, power_stream, stream_support, Characteristics, Decomposition,
    JoiningCollector, PowerListCollector, SliceSpliterator, Spliterator, ZipSpliterator,
};
use powerlist::{tabulate, PList, PowerList};

/// Section IV.B, first listing: create a ZipSpliterator over the data,
/// make a parallel stream from it, collect with
/// (PowerList::new, add, zipAll) — "an identity function, meant to
/// verify the correct decomposition and combining".
#[test]
fn section_iv_identity_listing() {
    let list_int: Vec<f64> = (0..256).map(|i| i as f64 * 1.5).collect();
    let sp_it = ZipSpliterator::over(PowerList::from_vec(list_int.clone()).unwrap());
    let my_stream = stream_support(sp_it, true);
    let li = my_stream.collect(PowerListCollector::new(Decomposition::Zip));
    assert_eq!(li.into_vec(), list_int);
}

/// Section IV's `collect` description: the words example — separator
/// only appears where the combiner runs.
#[test]
fn section_iv_words_example() {
    let words: Vec<String> = ["alpha", "beta", "gamma", "delta"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    // Parallel with singleton leaves: 3 combiner calls, 3 separators.
    let par = stream_support(SliceSpliterator::new(words.clone()), true)
        .with_leaf_size(1)
        .collect(JoiningCollector::new(", "));
    assert_eq!(par, "alpha, beta, gamma, delta");
    // "if the stream hadn't been parallel, the combiner would not be
    // used and so the comma wouldn't be added":
    let seq =
        stream_support(SliceSpliterator::new(words), false).collect(JoiningCollector::new(", "));
    assert_eq!(seq, "alphabetagammadelta");
}

/// Section IV.B, map obtained from the identity collect by applying an
/// operation inside the accumulator.
#[test]
fn section_iv_map_from_accumulator() {
    let data = tabulate(64, |i| i as f64).unwrap();
    let out = plalgo::map_stream(data.clone(), Decomposition::Zip, |d| d * d);
    let expected: Vec<f64> = data.iter().map(|d| d * d).collect();
    assert_eq!(out.into_vec(), expected);
}

/// Section IV.B, final listing: the PolynomialValue execution — build
/// the collector, its inner-class spliterator, check POWER2, stream,
/// collect.
#[test]
fn section_iv_polynomial_listing() {
    let coeffs = tabulate(1 << 12, |i| ((i % 7) as f64) - 3.0).unwrap();
    let x = 0.999;
    // The paper checks the POWER2 characteristic before running:
    let pv = plalgo::PolynomialCollector::new(x);
    let sp = plalgo::poly_spliterator(coeffs.clone(), &pv);
    assert!(sp.has_characteristics(Characteristics::POWER2));
    let result = stream_support(sp, true).collect(pv);
    let expected = plalgo::horner(coeffs.as_slice(), x);
    assert!((result - expected).abs() < 1e-9 * (1.0 + expected.abs()));
}

/// Eq. 2: inv permutes index b to bit-reversal(b); the example list of
/// Section II semantics.
#[test]
fn eq2_inv() {
    let p = tabulate(16, |i| i as u32).unwrap();
    let inv = powerlist::perm::inv_indexed(&p);
    for b in 0..16usize {
        let rev = powerlist::perm::bit_reverse(b, 4);
        assert_eq!(inv[rev], b as u32);
    }
    // involution
    assert_eq!(powerlist::perm::inv_indexed(&inv), p);
}

/// Eq. 3: fft agrees with the naive DFT (the algebraic specification).
#[test]
fn eq3_fft() {
    let signal = tabulate(64, |i| {
        plalgo::Complex::new((i % 5) as f64, -((i % 3) as f64))
    })
    .unwrap();
    let fast = plalgo::fft_seq(&signal);
    let slow = plalgo::dft_naive(signal.as_slice());
    for (a, b) in fast.iter().zip(&slow) {
        assert!(a.approx_eq(*b, 1e-8), "{a} vs {b}");
    }
}

/// Eq. 4: vp(p ♮ q, x) = vp(p, x²) + x·vp(q, x²), checked structurally.
#[test]
fn eq4_vp_recursion() {
    let p = tabulate(32, |i| (i as f64).sin()).unwrap();
    let x = 0.77;
    let whole = SequentialExecutor::new().execute(&plalgo::VpFunction::new(x), &p.clone().view());
    let (ev, od) = p.clone().unzip().unwrap();
    let lhs = SequentialExecutor::new().execute(&plalgo::VpFunction::new(x * x), &ev.view());
    let rhs = SequentialExecutor::new().execute(&plalgo::VpFunction::new(x * x), &od.view());
    assert!((whole - (lhs + x * rhs)).abs() < 1e-12);
}

/// Section II's PList example with p.i = [3i, 3i+1, 3i+2].
#[test]
fn section_ii_plist_example() {
    let parts: Vec<PList<i64>> = (0..3)
        .map(|i| PList::from_vec(vec![i * 3, i * 3 + 1, i * 3 + 2]).unwrap())
        .collect();
    assert_eq!(
        PList::tie_n(parts.clone()).unwrap().as_slice(),
        &[0, 1, 2, 3, 4, 5, 6, 7, 8]
    );
    assert_eq!(
        PList::zip_n(parts).unwrap().as_slice(),
        &[0, 3, 6, 1, 4, 7, 2, 5, 8]
    );
}

/// Section V: the POWER2 gate — non-power-of-two streams are rejected
/// before a PowerList collect runs.
#[test]
fn section_v_power2_gate() {
    let data = tabulate(32, |i| i as i64).unwrap();
    // A filtered stream loses POWER2:
    let filtered = power_stream(data, Decomposition::Tie).filter(|x| x % 3 != 0);
    let err = collect_powerlist(filtered, Decomposition::Tie).unwrap_err();
    assert!(matches!(err, powerlist::Error::NotPowerOfTwo(_)));
}

/// Section V: mismatching spliterator and combiner does NOT reproduce
/// the source ("could not be recreated by using simple concatenation")
/// — and the mismatch is exactly `inv`.
#[test]
fn section_v_zip_needs_zipall() {
    let data = tabulate(32, |i| i as i64).unwrap();
    let out = power_stream(data.clone(), Decomposition::Zip)
        .with_leaf_size(1)
        .collect(PowerListCollector::new(Decomposition::Tie))
        .into_powerlist()
        .unwrap();
    assert_ne!(out, data);
    assert_eq!(out, powerlist::perm::inv_indexed(&data));
}
