//! Differential route-equivalence harness.
//!
//! Every algorithm in the catalogue must produce the same answer through
//! every execution route the repo implements:
//!
//! 1. the sequential specification (plain folds/loops over slices);
//! 2. the streams adaptation's **cloning** collect (per-element drain
//!    through `Collector::accumulate`);
//! 3. the streams adaptation's **zero-copy** collect (borrowed-leaf
//!    kernels via `LeafAccess` + `Collector::leaf_slice`);
//! 4. the JPLF fork-join executor;
//! 5. the simulated-MPI executor.
//!
//! Routes 2 and 3 share the same spliterators and collectors; the only
//! difference is whether the driver is allowed to see the borrowed run.
//! The [`Opaque`] wrapper below hides the `LeafAccess` capability of any
//! spliterator, forcing the cloning drain — so each property pins the
//! zero-copy kernels against the exact per-element semantics they
//! replaced, on the same random input.

use jplf::{Decomp, Executor, ForkJoinExecutor, MpiExecutor, SequentialExecutor};
use jstreams::{
    stream_support, AdaptiveSplit, Characteristics, Decomposition, ExecConfig, FusePipe,
    IdentityStage, ItemSource, JoiningCollector, LeafAccess, PowerListCollector, PowerMapCollector,
    PowerSpliterator, ReduceCollector, SliceSpliterator, SplitPolicy, Spliterator, TieSpliterator,
    VecCollector,
};
use powerlist::PowerList;
use proptest::prelude::*;
use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};

/// The recorded tests below install a **global** plobs sink, so any
/// test running concurrently in this binary would leak its events into
/// their reports (the Opaque-forced cloning drains especially). The
/// route properties share this lock for reading; the recorded tests
/// take it exclusively.
static ROUTE_LOCK: RwLock<()> = RwLock::new(());

fn shared() -> RwLockReadGuard<'static, ()> {
    ROUTE_LOCK.read().unwrap_or_else(|e| e.into_inner())
}

fn exclusive() -> RwLockWriteGuard<'static, ()> {
    ROUTE_LOCK.write().unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------------
// Route plumbing
// ---------------------------------------------------------------------

/// Delegating wrapper that hides a spliterator's `LeafAccess` capability
/// (all methods keep their "no borrowed access" defaults), forcing the
/// collect driver down the cloning per-element drain.
struct Opaque<S>(S);

impl<T, S: ItemSource<T>> ItemSource<T> for Opaque<S> {
    fn try_advance(&mut self, action: &mut dyn FnMut(T)) -> bool {
        self.0.try_advance(action)
    }

    fn for_each_remaining(&mut self, action: &mut dyn FnMut(T)) {
        self.0.for_each_remaining(action)
    }

    fn estimate_size(&self) -> usize {
        self.0.estimate_size()
    }
}

// Deliberately empty: `try_as_slice`/`try_as_strided` answer `None`.
impl<T, S> LeafAccess<T> for Opaque<S> {}

impl<T, S: Spliterator<T>> Spliterator<T> for Opaque<S> {
    fn try_split(&mut self) -> Option<Self> {
        self.0.try_split().map(Opaque)
    }

    fn characteristics(&self) -> Characteristics {
        self.0.characteristics()
    }
}

// Identity FusePipe: lets `.map`/`.filter` build a fused chain over an
// Opaque source, whose hidden `LeafAccess` then refuses the fused-borrow
// route — the same chain, forced down the cloning drain.
impl<T, S> FusePipe<T> for Opaque<S>
where
    T: Clone + Send + 'static,
    S: Spliterator<T> + 'static,
{
    type Base = T;
    type Src = Self;
    type Chain = IdentityStage;

    fn decompose(self) -> (Self, IdentityStage) {
        (self, IdentityStage)
    }
}

fn powerlist_i64(max_k: u32) -> impl Strategy<Value = PowerList<i64>> {
    (0..=max_k)
        .prop_flat_map(|k| proptest::collection::vec(-1000i64..1000, 1 << k as usize))
        .prop_map(|v| PowerList::from_vec(v).unwrap())
}

fn powerlist_f64(max_k: u32) -> impl Strategy<Value = PowerList<f64>> {
    (0..=max_k)
        .prop_flat_map(|k| proptest::collection::vec(-1.0f64..1.0, 1 << k as usize))
        .prop_map(|v| PowerList::from_vec(v).unwrap())
}

fn decomp_of(zip: bool) -> (Decomposition, Decomp) {
    if zip {
        (Decomposition::Zip, Decomp::Zip)
    } else {
        (Decomposition::Tie, Decomp::Tie)
    }
}

fn rel_close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-8 * (1.0 + a.abs().max(b.abs()))
}

// ---------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Map: spec = cloning collect = zero-copy collect = fork-join =
    /// MPI-sim, under both decompositions and arbitrary leaf sizes.
    #[test]
    fn map_routes_agree(p in powerlist_i64(9), c in -7i64..7, zip in any::<bool>(),
                        leaf in 1usize..64) {
        let _shared = shared();
        let (ds, dj) = decomp_of(zip);
        let spec = powerlist::ops::map(&p, |x| x * c - 3);

        // Zero-copy collect (PowerMapCollector has slice kernels).
        let zero_copy = stream_support(PowerSpliterator::over(p.clone(), ds), true)
            .with_leaf_size(leaf)
            .collect(PowerMapCollector::new(ds, move |x: i64| x * c - 3))
            .into_vec();
        prop_assert_eq!(&zero_copy[..], spec.as_slice());

        // Cloning collect: same spliterator and collector, capability hidden.
        let cloning = stream_support(Opaque(PowerSpliterator::over(p.clone(), ds)), true)
            .with_leaf_size(leaf)
            .collect(PowerMapCollector::new(ds, move |x: i64| x * c - 3))
            .into_vec();
        prop_assert_eq!(&cloning[..], spec.as_slice());

        // JPLF executors.
        let f = plalgo::MapFunction::new(dj, move |x: &i64| x * c - 3);
        let v = p.view();
        prop_assert_eq!(SequentialExecutor::new().execute(&f, &v), spec.clone());
        prop_assert_eq!(ForkJoinExecutor::new(2, leaf).execute(&f, &v), spec.clone());
        prop_assert_eq!(MpiExecutor::new(4).execute(&f, &v), spec);
    }

    /// Reduce with a **non-commutative** (but associative) combine:
    /// composition of affine maps `x ↦ a·x + b`. Tie decomposition only —
    /// tie splits preserve contiguous order, which is exactly what a
    /// non-commutative reduction requires (zip would interleave residue
    /// classes and legitimately change the answer).
    #[test]
    fn reduce_noncommutative_routes_agree(
        raw in (0u32..=8).prop_flat_map(|k| {
            proptest::collection::vec((-9i64..9, -9i64..9), 1usize << k)
        }),
        leaf in 1usize..32,
    ) {
        let _shared = shared();
        let compose = |l: (i64, i64), r: (i64, i64)| {
            (l.0.wrapping_mul(r.0), l.0.wrapping_mul(r.1).wrapping_add(l.1))
        };
        let spec = raw.iter().fold((1i64, 0i64), |acc, &x| compose(acc, x));
        let p = PowerList::from_vec(raw).unwrap();

        // Zero-copy (TieSpliterator exposes the borrowed run).
        let zc = stream_support(TieSpliterator::over(p.clone()), true)
            .with_leaf_size(leaf)
            .collect(ReduceCollector::new((1i64, 0i64), compose));
        prop_assert_eq!(zc, spec);

        // Cloning drain, same collector.
        let cl = stream_support(Opaque(TieSpliterator::over(p.clone())), true)
            .with_leaf_size(leaf)
            .collect(ReduceCollector::new((1i64, 0i64), compose));
        prop_assert_eq!(cl, spec);

        // JPLF routes.
        let f = plalgo::ReduceFunction::new(Decomp::Tie, move |a: &(i64, i64), b: &(i64, i64)| {
            compose(*a, *b)
        });
        let v = p.view();
        prop_assert_eq!(SequentialExecutor::new().execute(&f, &v), spec);
        prop_assert_eq!(ForkJoinExecutor::new(3, leaf).execute(&f, &v), spec);
        prop_assert_eq!(MpiExecutor::new(4).execute(&f, &v), spec);
    }

    /// Commutative reduce agrees across routes under both decompositions.
    #[test]
    fn reduce_commutative_routes_agree(p in powerlist_i64(9), zip in any::<bool>(),
                                       leaf in 1usize..64) {
        let _shared = shared();
        let (ds, dj) = decomp_of(zip);
        let spec = powerlist::ops::reduce(&p, |a, b| a + b);

        let zc = stream_support(PowerSpliterator::over(p.clone(), ds), true)
            .with_leaf_size(leaf)
            .collect(ReduceCollector::new(0i64, |a, b| a + b));
        prop_assert_eq!(zc, spec);

        let cl = stream_support(Opaque(PowerSpliterator::over(p.clone(), ds)), true)
            .with_leaf_size(leaf)
            .collect(ReduceCollector::new(0i64, |a, b| a + b));
        prop_assert_eq!(cl, spec);

        let f = plalgo::ReduceFunction::new(dj, |a: &i64, b: &i64| a + b);
        let v = p.view();
        prop_assert_eq!(ForkJoinExecutor::new(2, leaf).execute(&f, &v), spec);
        prop_assert_eq!(MpiExecutor::new(8).execute(&f, &v), spec);
    }

    /// Prefix scan: specification fold = sequential Ladner–Fischer =
    /// parallel scan at arbitrary grain.
    #[test]
    fn scan_routes_agree(p in powerlist_i64(9), grain in 1usize..80) {
        let _shared = shared();
        let spec = plalgo::scan_spec(p.as_slice(), |a, b| a + b);
        let seq = plalgo::scan_seq(&p, 0, |a, b| a + b);
        prop_assert_eq!(seq.as_slice(), &spec[..]);
        let pool = forkjoin::ForkJoinPool::new(2);
        let par = plalgo::scan_par(&pool, &p, 0, |a: &i64, b: &i64| a + b, grain).unwrap();
        prop_assert_eq!(par.as_slice(), &spec[..]);
    }

    /// Polynomial evaluation: Horner = sequential stream = parallel
    /// stream (zero-copy and cloning) = tupled-vp stream = JPLF routes.
    #[test]
    fn vp_routes_agree(coeffs in powerlist_f64(9), x in -0.99f64..0.99, leaf in 1usize..64) {
        let _shared = shared();
        let spec = plalgo::horner(coeffs.as_slice(), x);

        prop_assert!(rel_close(plalgo::eval_seq_stream(coeffs.clone(), x), spec));
        prop_assert!(rel_close(plalgo::eval_par_stream(coeffs.clone(), x), spec));
        prop_assert!(rel_close(plalgo::eval_tupled_stream(coeffs.clone(), x), spec));

        // Tupled vp through the forced cloning drain.
        let cl = stream_support(Opaque(TieSpliterator::over(coeffs.clone())), true)
            .with_leaf_size(leaf)
            .collect(plalgo::TupledVpCollector::new(x));
        prop_assert!(rel_close(cl, spec));

        let v = coeffs.view();
        let vp = plalgo::VpFunction::new(x);
        prop_assert!(rel_close(SequentialExecutor::new().execute(&vp, &v), spec));
        prop_assert!(rel_close(ForkJoinExecutor::new(2, leaf).execute(&vp, &v), spec));
        prop_assert!(rel_close(MpiExecutor::new(4).execute(&vp, &v), spec));
    }

    /// FFT: sequential spec = zero-copy stream (strided borrowed leaves)
    /// = cloning stream = JPLF fork-join = MPI-sim.
    #[test]
    fn fft_routes_agree(re in powerlist_f64(7), leaf in 1usize..32) {
        let _shared = shared();
        let signal = powerlist::ops::map(&re, |&x| plalgo::Complex::new(x, -x * 0.5));
        let spec = plalgo::fft_seq(&signal);
        let close = |out: &PowerList<plalgo::Complex>| {
            out.iter().zip(spec.iter()).all(|(a, b)| a.approx_eq(*b, 1e-7))
        };

        prop_assert!(close(&plalgo::fft_stream(signal.clone())));

        let cl = stream_support(
            Opaque(PowerSpliterator::over(signal.clone(), Decomposition::Zip)),
            true,
        )
        .with_leaf_size(leaf)
        .collect(plalgo::FftCollector);
        prop_assert!(close(&cl));

        let v = signal.view();
        prop_assert!(close(&ForkJoinExecutor::new(2, leaf).execute(&plalgo::FftFunction, &v)));
        prop_assert!(close(&MpiExecutor::new(4).execute(&plalgo::FftFunction, &v)));
    }

    /// Sorting networks: Batcher (seq + par) and bitonic all agree with
    /// the standard library sort.
    #[test]
    fn sort_routes_agree(p in powerlist_i64(9), grain in 1usize..128) {
        let _shared = shared();
        let mut expected = p.clone().into_vec();
        expected.sort();
        let batcher = plalgo::batcher_sort(&p);
        prop_assert_eq!(batcher.as_slice(), &expected[..]);
        let bitonic = plalgo::bitonic_sort(&p);
        prop_assert_eq!(bitonic.as_slice(), &expected[..]);
        let pool = forkjoin::ForkJoinPool::new(2);
        let par = plalgo::batcher_sort_par(&pool, &p, grain);
        prop_assert_eq!(par.as_slice(), &expected[..]);
    }

    /// Gray codes: the structural (PowerList recursion) and closed-form
    /// constructions coincide, decode correctly, and step one bit at a
    /// time.
    #[test]
    fn gray_routes_agree(bits in 1u32..11) {
        let _shared = shared();
        let structural = plalgo::gray_structural(bits).unwrap();
        let closed = plalgo::gray_closed(bits).unwrap();
        prop_assert_eq!(&structural, &closed);
        for (i, &g) in structural.iter().enumerate() {
            prop_assert_eq!(plalgo::gray_decode(g), i as u64);
            if i > 0 {
                let diff = g ^ structural[i - 1];
                prop_assert_eq!(diff.count_ones(), 1, "step {i} flips {diff:#b}");
            }
        }
    }

    /// Split policies are tree-shape-only: `Fixed` and `Adaptive` agree
    /// with the sequential spec across map / filter / reduce pipelines,
    /// on SIZED sources and on non-SIZED (filtered) ones whose size
    /// estimate is just an upper bound.
    #[test]
    fn split_policies_agree_with_spec(
        raw in proptest::collection::vec(-1000i64..1000, 1..600),
        leaf in 1usize..64,
        min_leaf in 1usize..32,
    ) {
        let _shared = shared();
        let policies = [
            SplitPolicy::Fixed(leaf),
            SplitPolicy::Adaptive(AdaptiveSplit { min_leaf, ..AdaptiveSplit::default() }),
        ];
        let spec_map: i64 = raw.iter().map(|x| x * 3 - 1).sum();
        let spec_filter: i64 = raw.iter().filter(|x| *x % 3 == 0).sum();
        let spec_survivors: Vec<i64> =
            raw.iter().copied().filter(|x| x % 3 == 0).collect();
        for policy in policies {
            // SIZED pipeline: map + reduce.
            let m = stream_support(SliceSpliterator::new(raw.clone()), true)
                .with_split_policy(policy)
                .map(|x| x * 3 - 1)
                .reduce(0, |a, b| a + b);
            prop_assert_eq!(m, spec_map, "map+reduce under {:?}", policy);
            // Non-SIZED pipeline: filter + reduce.
            let f = stream_support(SliceSpliterator::new(raw.clone()), true)
                .with_split_policy(policy)
                .filter(|x| x % 3 == 0)
                .reduce(0, |a, b| a + b);
            prop_assert_eq!(f, spec_filter, "filter+reduce under {:?}", policy);
            // Non-SIZED with order-sensitive output: filter + to_vec.
            let v = stream_support(SliceSpliterator::new(raw.clone()), true)
                .with_split_policy(policy)
                .filter(|x| x % 3 == 0)
                .to_vec();
            prop_assert_eq!(&v, &spec_survivors, "filter+to_vec under {:?}", policy);
        }
    }

    /// Both split policies evaluate the paper's vp polynomial collector
    /// to the Horner reference.
    #[test]
    fn split_policies_agree_on_vp(coeffs in powerlist_f64(8), x in -0.99f64..0.99,
                                  min_leaf in 1usize..32) {
        let _shared = shared();
        let spec = plalgo::horner(coeffs.as_slice(), x);
        let fixed = stream_support(TieSpliterator::over(coeffs.clone()), true)
            .with_split_policy(SplitPolicy::Fixed(min_leaf))
            .collect(plalgo::TupledVpCollector::new(x));
        prop_assert!(rel_close(fixed, spec));
        let adaptive_policy =
            SplitPolicy::Adaptive(AdaptiveSplit { min_leaf, ..AdaptiveSplit::default() });
        let adaptive = stream_support(TieSpliterator::over(coeffs.clone()), true)
            .with_split_policy(adaptive_policy)
            .collect(plalgo::TupledVpCollector::new(x));
        prop_assert!(rel_close(adaptive, spec));
    }

    /// Maximum segment sum: spec = Kadane = zero-copy stream = cloning
    /// stream = JPLF fork-join = MPI-sim.
    #[test]
    fn mss_routes_agree(p in powerlist_i64(9), leaf in 1usize..64) {
        let _shared = shared();
        let spec = plalgo::mss_spec(p.as_slice());
        prop_assert_eq!(plalgo::mss_kadane(p.as_slice()), spec);
        prop_assert_eq!(plalgo::mss_stream(p.clone()), spec);

        let cl = stream_support(Opaque(TieSpliterator::over(p.clone())), true)
            .with_leaf_size(leaf)
            .collect(plalgo::MssCollector);
        prop_assert_eq!(cl, spec);

        let v = p.view();
        prop_assert_eq!(ForkJoinExecutor::new(2, leaf).execute(&plalgo::MssFunction, &v).best, spec);
        prop_assert_eq!(MpiExecutor::new(4).execute(&plalgo::MssFunction, &v).best, spec);
    }
}

// ---------------------------------------------------------------------
// Fused-pipeline equivalence: `Stream::map`/`filter` now build a fused
// chain over the untouched source, whose leaves take the fused-borrow
// route. Every adapted pipeline must agree with the sequential spec,
// with the same chain forced down the cloning drain (Opaque source),
// and — where the powerlist theory has a counterpart (map; there is no
// length-breaking filter in PowerList algebra) — with the JPLF
// fork-join executor.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// map + reduce: spec = cloning = fused-borrow = JPLF fork-join.
    #[test]
    fn fused_map_routes_agree(p in powerlist_i64(9), c in -7i64..7, leaf in 1usize..64) {
        let _shared = shared();
        let f = move |x: i64| x.wrapping_mul(c).wrapping_sub(5);
        let spec = p.iter().map(|&x| f(x)).fold(0i64, i64::wrapping_add);

        let fused = stream_support(TieSpliterator::over(p.clone()), true)
            .with_leaf_size(leaf)
            .map(f)
            .reduce(0i64, i64::wrapping_add);
        prop_assert_eq!(fused, spec);

        let cloning = stream_support(Opaque(TieSpliterator::over(p.clone())), true)
            .with_leaf_size(leaf)
            .map(f)
            .reduce(0i64, i64::wrapping_add);
        prop_assert_eq!(cloning, spec);

        // JPLF fork-join: map to the same values, then tie-reduce them.
        let mf = plalgo::MapFunction::new(Decomp::Tie, move |x: &i64| f(*x));
        let v = p.view();
        let mapped = ForkJoinExecutor::new(2, leaf).execute(&mf, &v);
        let rf = plalgo::ReduceFunction::new(Decomp::Tie, |a: &i64, b: &i64| {
            a.wrapping_add(*b)
        });
        let mv = mapped.view();
        prop_assert_eq!(ForkJoinExecutor::new(2, leaf).execute(&rf, &mv), spec);
    }

    /// filter + reduce and filter + to_vec (order-sensitive): spec =
    /// cloning = fused-borrow, over Tie and Slice sources.
    #[test]
    fn fused_filter_routes_agree(p in powerlist_i64(9), m in 2i64..7, leaf in 1usize..64) {
        let _shared = shared();
        let keep = move |x: &i64| x.rem_euclid(m) != 0;
        let spec_sum: i64 = p.iter().copied().filter(keep).sum();
        let spec_vec: Vec<i64> = p.iter().copied().filter(keep).collect();

        let fused = stream_support(TieSpliterator::over(p.clone()), true)
            .with_leaf_size(leaf)
            .filter(keep)
            .reduce(0i64, |a, b| a + b);
        prop_assert_eq!(fused, spec_sum);

        let cloning = stream_support(Opaque(TieSpliterator::over(p.clone())), true)
            .with_leaf_size(leaf)
            .filter(keep)
            .reduce(0i64, |a, b| a + b);
        prop_assert_eq!(cloning, spec_sum);

        let ordered = stream_support(SliceSpliterator::new(p.clone().into_vec()), true)
            .with_leaf_size(leaf)
            .filter(keep)
            .to_vec();
        prop_assert_eq!(ordered, spec_vec);
    }

    /// map ∘ filter with a **non-commutative** (but associative) reduce —
    /// composition of affine maps — over a Tie source, whose splits
    /// preserve contiguous order: spec = cloning = fused-borrow.
    #[test]
    fn fused_map_filter_noncommutative_routes_agree(
        p in powerlist_i64(8),
        leaf in 1usize..32,
    ) {
        let _shared = shared();
        let to_affine = |x: i64| (x.rem_euclid(5) - 2, x.rem_euclid(7) - 3);
        let keep = |t: &(i64, i64)| t.0 != 0;
        let compose = |l: (i64, i64), r: (i64, i64)| {
            (l.0.wrapping_mul(r.0), l.0.wrapping_mul(r.1).wrapping_add(l.1))
        };
        let spec = p
            .iter()
            .map(|&x| to_affine(x))
            .filter(keep)
            .fold((1i64, 0i64), compose);

        let fused = stream_support(TieSpliterator::over(p.clone()), true)
            .with_leaf_size(leaf)
            .map(to_affine)
            .filter(keep)
            .collect(ReduceCollector::new((1i64, 0i64), compose));
        prop_assert_eq!(fused, spec);

        let cloning = stream_support(Opaque(TieSpliterator::over(p.clone())), true)
            .with_leaf_size(leaf)
            .map(to_affine)
            .filter(keep)
            .collect(ReduceCollector::new((1i64, 0i64), compose));
        prop_assert_eq!(cloning, spec);
    }

    /// A panic inside the *mapper* surfaces identically through
    /// `try_collect` on the fused-borrow route and on the forced cloning
    /// route, parallel and sequential.
    #[test]
    fn panic_in_mapper_propagates_through_try_collect(
        p in powerlist_i64(6),
        ix in 0usize..64,
        leaf in 1usize..16,
    ) {
        let _shared = shared();
        let mut raw = p.into_vec();
        let ix = ix % raw.len();
        raw[ix] = 100_000;
        let poison = raw[ix];
        let msg = format!("mapper poison {poison}");
        let p = PowerList::from_vec(raw).unwrap();
        let mapper = move |x: i64| {
            assert!(x != poison, "mapper poison {x}");
            x + 1
        };

        for cfg in [jstreams::ExecConfig::par().with_leaf_size(leaf), jstreams::ExecConfig::seq()] {
            // Fused-borrow route (Tie source borrows its leaves).
            let err = stream_support(TieSpliterator::over(p.clone()), true)
                .map(mapper)
                .try_collect(ReduceCollector::new(0i64, |a, b| a + b), &cfg)
                .expect_err("fused mapper panic must fail the collect");
            prop_assert!(matches!(err, jstreams::ExecError::Panicked(_)));
            prop_assert_eq!(err.panic_message(), Some(msg.as_str()));

            // Same chain down the cloning drain.
            let err = stream_support(Opaque(TieSpliterator::over(p.clone())), true)
                .map(mapper)
                .try_collect(ReduceCollector::new(0i64, |a, b| a + b), &cfg)
                .expect_err("cloning mapper panic must fail the collect");
            prop_assert_eq!(err.panic_message(), Some(msg.as_str()));
        }
    }
}

// ---------------------------------------------------------------------
// Tuned-route equivalence: resolving the split policy from a pltune
// plan cache is tree-shape-only — cold (calibrating), warm (cache-hit)
// and invalidated (re-calibrating) runs must all agree with the
// explicit fixed-policy route, for SIZED and filtered (upper-bound)
// pipelines alike.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn tuned_routes_agree_with_fixed(
        raw in proptest::collection::vec(-1000i64..1000, 1..500),
        leaf in 1usize..64,
    ) {
        let _shared = shared();
        let spec_map: i64 = raw.iter().map(|x| x * 3 - 1).sum();
        let spec_survivors: Vec<i64> =
            raw.iter().copied().filter(|x| x % 3 == 0).collect();

        let fixed_map = stream_support(SliceSpliterator::new(raw.clone()), true)
            .with_leaf_size(leaf)
            .map(|x| x * 3 - 1)
            .reduce(0, |a, b| a + b);
        prop_assert_eq!(fixed_map, spec_map);

        let cache = std::sync::Arc::new(jstreams::PlanCache::new());
        for round in 0..3 {
            // Round 0 calibrates cold, round 1 hits the warm cache,
            // round 2 re-calibrates after explicit invalidation.
            if round == 2 {
                cache.invalidate_all();
            }
            let tuned_map = stream_support(SliceSpliterator::new(raw.clone()), true)
                .with_auto_tuning(std::sync::Arc::clone(&cache))
                .map(|x| x * 3 - 1)
                .reduce(0, |a, b| a + b);
            prop_assert_eq!(tuned_map, spec_map, "map+reduce round {}", round);

            // Filtered pipeline: non-SIZED, order-sensitive output.
            let tuned_vec = stream_support(SliceSpliterator::new(raw.clone()), true)
                .with_auto_tuning(std::sync::Arc::clone(&cache))
                .filter(|x| x % 3 == 0)
                .to_vec();
            prop_assert_eq!(&tuned_vec, &spec_survivors, "filter+to_vec round {}", round);
        }
    }
}

/// The tune counters across a cache lifetime: cold run calibrates, warm
/// run hits without calibrating, invalidation forces one fresh
/// calibration — and every run computes the same sum.
#[test]
fn tuner_counters_across_invalidation() {
    let _exclusive = exclusive();
    let cache = std::sync::Arc::new(jstreams::PlanCache::new());
    let n = 4096i64;
    let run = |cache: std::sync::Arc<jstreams::PlanCache>| {
        stream_support(SliceSpliterator::new((0..n).collect()), true)
            .with_auto_tuning(cache)
            .reduce(0i64, |a, b| a + b)
    };
    let c = std::sync::Arc::clone(&cache);
    let (sums, report) = plobs::recorded(move || {
        let a = run(std::sync::Arc::clone(&c));
        let b = run(std::sync::Arc::clone(&c));
        c.invalidate_all();
        let d = run(std::sync::Arc::clone(&c));
        (a, b, d)
    });
    let spec: i64 = (0..n).sum();
    assert_eq!(sums, (spec, spec, spec));
    assert_eq!(report.tune_calibrations, 2, "cold + post-invalidation");
    assert_eq!(report.tune_hits, 1, "warm run reuses the plan");
    assert_eq!(report.tune_misses, 0);
}

// ---------------------------------------------------------------------
// Route accounting: the zero-copy dispatch is not just equivalent, it
// is *taken*. These record the actual leaf routes through the plobs
// sink and assert that zero-copy-capable pipelines never fall back to
// the cloning drain (the regression the run_leaf dispatch fix closed).
// ---------------------------------------------------------------------

#[test]
fn zero_copy_capable_routes_never_clone() {
    let _exclusive = exclusive();
    let p = PowerList::from_vec((0..512i64).collect()).unwrap();
    let q = p.clone();
    let ((tie_sum, zip_mapped), report) = plobs::recorded(move || {
        // Tie leaves are contiguous: must resolve to `leaf_slice`.
        let tie_sum = stream_support(TieSpliterator::over(p.clone()), true)
            .with_leaf_size(16)
            .collect(ReduceCollector::new(0i64, |a, b| a + b));
        // Zip leaves are strided residue classes: must resolve to
        // `leaf_strided`.
        let zip_mapped =
            stream_support(PowerSpliterator::over(p.clone(), Decomposition::Zip), true)
                .with_leaf_size(16)
                .collect(PowerMapCollector::new(Decomposition::Zip, |x: i64| x * 2))
                .into_vec();
        (tie_sum, zip_mapped)
    });
    assert_eq!(tie_sum, (0..512).sum::<i64>());
    assert_eq!(
        zip_mapped,
        q.iter().map(|x| x * 2).collect::<Vec<_>>(),
        "zip collect result"
    );
    assert_eq!(
        report.routes.cloning_drain.leaves,
        0,
        "a zero-copy-capable route fell back to the cloning drain:\n{}",
        report.tree_summary()
    );
    assert!(
        report.routes.zero_copy_slice.leaves > 0,
        "tie run took no slice leaves"
    );
    assert!(
        report.routes.zero_copy_strided.leaves > 0,
        "zip run took no strided leaves"
    );
    assert_eq!(report.routes.total_items(), 2 * 512);
}

#[test]
fn hidden_leaf_access_takes_only_the_cloning_drain() {
    let _exclusive = exclusive();
    let p = PowerList::from_vec((0..256i64).collect()).unwrap();
    let (sum, report) = plobs::recorded(move || {
        stream_support(Opaque(TieSpliterator::over(p)), true)
            .with_leaf_size(16)
            .collect(ReduceCollector::new(0i64, |a, b| a + b))
    });
    assert_eq!(sum, (0..256).sum::<i64>());
    assert_eq!(report.routes.zero_copy_slice.leaves, 0);
    assert_eq!(report.routes.zero_copy_strided.leaves, 0);
    assert!(
        report.routes.cloning_drain.leaves > 0,
        "opaque collect must drain per element:\n{}",
        report.tree_summary()
    );
}

/// Fused-capable pipelines (map / map∘filter over borrowing sources)
/// must *take* the fused-borrow route on every leaf — zero cloning
/// drains (the acceptance criterion of the fusion layer).
#[test]
fn fused_capable_pipelines_never_clone() {
    let _exclusive = exclusive();
    let n = 512i64;
    let p = PowerList::from_vec((0..n).collect()).unwrap();

    // map over a Tie source.
    let q = p.clone();
    let (sum, report) = plobs::recorded(move || {
        stream_support(TieSpliterator::over(q), true)
            .with_leaf_size(16)
            .map(|x| x * 3 + 1)
            .reduce(0i64, |a, b| a + b)
    });
    assert_eq!(sum, (0..n).map(|x| x * 3 + 1).sum::<i64>());
    assert_eq!(
        report.routes.cloning_drain.leaves,
        0,
        "fused map pipeline fell back to the cloning drain:\n{}",
        report.tree_summary()
    );
    assert!(report.routes.fused_borrow.leaves > 0);
    // Exact chain → every source element reaches the accumulator.
    assert_eq!(report.routes.fused_borrow.items, n as u64);

    // map over a strided Zip source: an exact chain into VecCollector
    // is placement-eligible, so the default route is now the
    // destination-passing fill (still zero cloning drains).
    let q = p.clone();
    let (v, report) = plobs::recorded(move || {
        stream_support(PowerSpliterator::over(q, Decomposition::Zip), true)
            .with_leaf_size(16)
            .map(|x| x - 7)
            .collect(jstreams::VecCollector)
    });
    assert_eq!(v.len(), n as usize);
    assert_eq!(report.routes.cloning_drain.leaves, 0);
    assert!(report.routes.placement.leaves > 0);

    // ... and with placement off, the fused-borrow route is preserved.
    let q = p.clone();
    let (v, report) = plobs::recorded(move || {
        stream_support(PowerSpliterator::over(q, Decomposition::Zip), true)
            .with_leaf_size(16)
            .with_placement(false)
            .map(|x| x - 7)
            .collect(jstreams::VecCollector)
    });
    assert_eq!(v.len(), n as usize);
    assert_eq!(report.routes.cloning_drain.leaves, 0);
    assert!(report.routes.fused_borrow.leaves > 0);
    assert_eq!(report.routes.placement.leaves, 0);

    // map ∘ filter over a Slice source: survivor item accounting.
    let raw: Vec<i64> = (0..n).collect();
    let survivors = raw.iter().filter(|x| (*x * 2) % 3 == 0).count() as u64;
    let (sum, report) = plobs::recorded(move || {
        stream_support(SliceSpliterator::new(raw), true)
            .with_leaf_size(16)
            .map(|x| x * 2)
            .filter(|x| x % 3 == 0)
            .reduce(0i64, |a, b| a + b)
    });
    assert_eq!(
        sum,
        (0..n).map(|x| x * 2).filter(|x| x % 3 == 0).sum::<i64>()
    );
    assert_eq!(
        report.routes.cloning_drain.leaves,
        0,
        "fused map∘filter pipeline fell back to the cloning drain:\n{}",
        report.tree_summary()
    );
    assert!(report.routes.fused_borrow.leaves > 0);
    assert_eq!(
        report.routes.fused_borrow.items, survivors,
        "filtered fused leaves must report survivor counts, not borrow lengths"
    );
}

/// The same fused chain over an Opaque source takes only the cloning
/// drain — and its item totals agree with the fused run's (survivors,
/// not reads), so `RunReport` totals stay comparable across routes.
#[test]
fn fused_chain_over_opaque_source_clones_with_matching_items() {
    let _exclusive = exclusive();
    let raw: Vec<i64> = (0..300).collect();
    let survivors = raw.iter().filter(|x| (*x + 1) % 2 == 0).count() as u64;
    let (sum, report) = plobs::recorded(move || {
        stream_support(Opaque(SliceSpliterator::new(raw)), true)
            .with_leaf_size(16)
            .map(|x| x + 1)
            .filter(|x| x % 2 == 0)
            .reduce(0i64, |a, b| a + b)
    });
    assert_eq!(
        sum,
        (0..300).map(|x| x + 1).filter(|x| x % 2 == 0).sum::<i64>()
    );
    assert_eq!(report.routes.fused_borrow.leaves, 0);
    assert!(
        report.routes.cloning_drain.leaves > 0,
        "opaque fused chain must drain per element:\n{}",
        report.tree_summary()
    );
    assert_eq!(
        report.routes.cloning_drain.items, survivors,
        "cloning drain counts what reaches the accumulator"
    );
}

/// The adaptive policy's recursion is bounded: even when demand says
/// "split" on every probe (surplus = `usize::MAX` makes the local-queue
/// test always pass), no recorded split can sit at or past the depth
/// cap, and every split carries the adaptive tag.
#[test]
fn adaptive_split_depth_stays_within_cap() {
    let _exclusive = exclusive();
    let threads = 2;
    let pool = std::sync::Arc::new(forkjoin::ForkJoinPool::new(threads));
    let policy = SplitPolicy::Adaptive(AdaptiveSplit {
        min_leaf: 1,
        depth_slack: 3,
        surplus: usize::MAX,
    });
    let cap = policy.depth_cap(threads);
    let n = 1usize << 12; // deep enough that only the cap stops recursion
    let (sum, report) = plobs::recorded(move || {
        stream_support(SliceSpliterator::new((0..n as i64).collect()), true)
            .with_pool(pool)
            .with_split_policy(policy)
            .reduce(0i64, |a, b| a + b)
    });
    assert_eq!(sum, (0..n as i64).sum::<i64>());
    assert!(report.splits > 0, "adaptive run must split");
    assert_eq!(
        report.splits, report.splits_adaptive,
        "every split of an adaptive run is tagged adaptive"
    );
    assert!(
        report.max_split_depth() < cap,
        "split at depth {} breaches cap {cap}:\n{}",
        report.max_split_depth(),
        report.tree_summary()
    );
}

// ---------------------------------------------------------------------
// Failure-route equivalence: a poisoned element must surface the same
// panic through every route — the fallible surfaces return
// `ExecError::Panicked` with the payload preserved, the legacy
// infallible entry points resume the unwind for `catch_unwind`.
// ---------------------------------------------------------------------

/// Reduce collector whose accumulator panics on one poison value.
struct PoisonReduce(i64);

impl jstreams::Collector<i64> for PoisonReduce {
    type Acc = i64;
    type Out = i64;
    fn supplier(&self) -> i64 {
        0
    }
    fn accumulate(&self, acc: &mut i64, item: i64) {
        assert!(item != self.0, "route poison {item}");
        *acc += item;
    }
    fn combine(&self, l: i64, r: i64) -> i64 {
        l + r
    }
    fn finish(&self, acc: i64) -> i64 {
        acc
    }
}

/// PowerFunction whose basic case panics on the same poison value.
#[derive(Clone)]
struct PoisonSumFn(i64);

impl jplf::PowerFunction for PoisonSumFn {
    type Elem = i64;
    type Out = i64;
    fn decomposition(&self) -> Decomp {
        Decomp::Tie
    }
    fn basic_case(&self, v: &i64) -> i64 {
        assert!(*v != self.0, "route poison {v}");
        *v
    }
    fn create_left(&self) -> Self {
        self.clone()
    }
    fn create_right(&self) -> Self {
        self.clone()
    }
    fn combine(&self, l: i64, r: i64) -> i64 {
        l + r
    }
}

/// Downcasts a resumed panic payload to its message.
fn payload_message(payload: Box<dyn std::any::Any + Send>) -> Option<String> {
    payload
        .downcast_ref::<&'static str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Panic propagation agrees across all routes: streams parallel and
    /// sequential `try_collect`, the legacy infallible `collect` shims,
    /// and the three JPLF executors' `try_execute`.
    #[test]
    fn panic_propagation_routes_agree(
        p in powerlist_i64(6),
        ix in 0usize..64,
        leaf in 1usize..16,
    ) {
        let _shared = shared();
        // Plant one unambiguous poison value so exactly one element
        // panics whatever the route's traversal order.
        let mut raw = p.into_vec();
        let ix = ix % raw.len();
        raw[ix] = 100_000;
        let poison = raw[ix];
        let msg = format!("route poison {poison}");
        let p = PowerList::from_vec(raw).unwrap();

        // Streams, parallel try_collect.
        let err = stream_support(TieSpliterator::over(p.clone()), true)
            .try_collect(
                PoisonReduce(poison),
                &jstreams::ExecConfig::par().with_leaf_size(leaf),
            )
            .expect_err("parallel try_collect must fail");
        prop_assert!(matches!(err, jstreams::ExecError::Panicked(_)));
        prop_assert_eq!(err.panic_message(), Some(msg.as_str()));

        // Streams, sequential try_collect.
        let err = stream_support(TieSpliterator::over(p.clone()), false)
            .try_collect(PoisonReduce(poison), &jstreams::ExecConfig::seq())
            .expect_err("sequential try_collect must fail");
        prop_assert_eq!(err.panic_message(), Some(msg.as_str()));

        // Legacy shims resume the contained unwind with the payload intact.
        for parallel in [true, false] {
            let q = p.clone();
            let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                stream_support(TieSpliterator::over(q), parallel)
                    .with_leaf_size(leaf)
                    .collect(PoisonReduce(poison))
            }))
            .expect_err("legacy collect must unwind");
            prop_assert_eq!(payload_message(payload), Some(msg.clone()));
        }

        // JPLF executors, fallible surface.
        let f = PoisonSumFn(poison);
        let v = p.view();
        let cfg = jplf::ExecConfig::par();
        for (route, err) in [
            ("sequential", SequentialExecutor::new().try_execute(&f, &v, &cfg).err()),
            ("forkjoin", ForkJoinExecutor::new(2, leaf).try_execute(&f, &v, &cfg).err()),
            ("mpi", MpiExecutor::new(4).try_execute(&f, &v, &cfg).err()),
        ] {
            let err = err.expect(route);
            prop_assert_eq!(err.panic_message(), Some(msg.as_str()), "route {}", route);
        }
    }
}

// ---------------------------------------------------------------------
// Degenerate shapes
// ---------------------------------------------------------------------

/// The degenerate PowerList: length 1, `log2 == 0`. The paper's
/// definitions bottom out here (a singleton is its own tie and zip
/// decomposition), so a singleton must never split and every route must
/// agree with the sequential specification exactly — map, reduce, both
/// decompositions, all five routes.
#[test]
fn singleton_powerlist_agrees_on_every_route() {
    let _shared = shared();
    assert_eq!(powerlist::log2_exact(1), 0);
    for zip in [false, true] {
        let (ds, dj) = decomp_of(zip);
        let p = PowerList::from_vec(vec![41i64]).unwrap();

        // Map through both collect drains.
        let spec = powerlist::ops::map(&p, |x| x * 2 + 1);
        let zero_copy = stream_support(PowerSpliterator::over(p.clone(), ds), true)
            .collect(PowerMapCollector::new(ds, |x: i64| x * 2 + 1))
            .into_vec();
        assert_eq!(&zero_copy[..], spec.as_slice(), "zero-copy, zip={zip}");
        let cloning = stream_support(Opaque(PowerSpliterator::over(p.clone(), ds)), true)
            .collect(PowerMapCollector::new(ds, |x: i64| x * 2 + 1))
            .into_vec();
        assert_eq!(&cloning[..], spec.as_slice(), "cloning, zip={zip}");

        // Reduce: a singleton reduction is the identity-combined element.
        let sum = stream_support(PowerSpliterator::over(p.clone(), ds), true)
            .collect(ReduceCollector::new(0i64, |a, b| a + b));
        assert_eq!(sum, 41, "reduce, zip={zip}");

        // JPLF executors on the same singleton.
        let f = plalgo::MapFunction::new(dj, |x: &i64| x * 2 + 1);
        let v = p.view();
        assert_eq!(SequentialExecutor::new().execute(&f, &v), spec.clone());
        assert_eq!(ForkJoinExecutor::new(2, 1).execute(&f, &v), spec.clone());
        assert_eq!(MpiExecutor::new(4).execute(&f, &v), spec);
    }
}

// ---------------------------------------------------------------------
// Placement-route equivalence: the destination-passing collect (root
// allocation + disjoint output windows, combine a no-op) must agree
// with the splice route and the sequential specification on every
// eligible pipeline — and must *not* run on ineligible ones. The fft
// leg lives next to its collector
// (`plalgo::fft::tests::placement_and_splice_spectra_are_bit_identical`),
// and `fft_routes_agree` above now exercises the placement route by
// default.
// ---------------------------------------------------------------------

/// Strips `SIZED | SUBSIZED` from a spliterator, turning its estimate
/// into an upper bound — an exact-size-unknown source that placement
/// must refuse.
struct UnsizedUpperBound<S>(S);

impl<T, S: ItemSource<T>> ItemSource<T> for UnsizedUpperBound<S> {
    fn try_advance(&mut self, action: &mut dyn FnMut(T)) -> bool {
        self.0.try_advance(action)
    }
    fn for_each_remaining(&mut self, action: &mut dyn FnMut(T)) {
        self.0.for_each_remaining(action)
    }
    fn estimate_size(&self) -> usize {
        self.0.estimate_size()
    }
}

impl<T, S> LeafAccess<T> for UnsizedUpperBound<S> {}

impl<T, S: Spliterator<T>> Spliterator<T> for UnsizedUpperBound<S> {
    fn try_split(&mut self) -> Option<Self> {
        self.0.try_split().map(UnsizedUpperBound)
    }
    fn characteristics(&self) -> Characteristics {
        self.0
            .characteristics()
            .without(Characteristics::SIZED | Characteristics::SUBSIZED)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `to_vec`: sequential spec = splice route = placement route, for
    /// sequential and parallel execution at arbitrary leaf sizes.
    #[test]
    fn placement_to_vec_routes_agree(
        raw in proptest::collection::vec(-1000i64..1000, 1..700),
        leaf in 1usize..64,
    ) {
        let _shared = shared();
        for cfg in [ExecConfig::par().with_leaf_size(leaf), ExecConfig::seq()] {
            let placed = stream_support(SliceSpliterator::new(raw.clone()), true)
                .try_collect(VecCollector, &cfg)
                .unwrap();
            let spliced = stream_support(SliceSpliterator::new(raw.clone()), true)
                .try_collect(VecCollector, &cfg.clone().with_placement(false))
                .unwrap();
            prop_assert_eq!(&placed, &raw);
            prop_assert_eq!(&spliced, &raw);
        }
    }

    /// PowerList collect through every split × collect decomposition
    /// pairing — including the mismatched pairings whose splice result
    /// is a permutation, which the interleaving/concatenating window
    /// descent must reproduce exactly.
    #[test]
    fn placement_powerlist_routes_agree(
        p in powerlist_i64(9),
        split_zip in any::<bool>(),
        collect_zip in any::<bool>(),
        leaf in 1usize..64,
    ) {
        let _shared = shared();
        let (ds, _) = decomp_of(split_zip);
        let (dc, _) = decomp_of(collect_zip);
        for cfg in [ExecConfig::par().with_leaf_size(leaf), ExecConfig::seq()] {
            let placed = stream_support(PowerSpliterator::over(p.clone(), ds), true)
                .try_collect(PowerListCollector::new(dc), &cfg)
                .unwrap();
            let spliced = stream_support(PowerSpliterator::over(p.clone(), ds), true)
                .try_collect(PowerListCollector::new(dc), &cfg.clone().with_placement(false))
                .unwrap();
            prop_assert_eq!(placed, spliced);
        }
    }

    /// Joining: the byte-measured windows plus combine-written
    /// separator gaps must spell exactly what the splice route spells.
    /// This collector inserts its separator only at *combine* points
    /// (the paper's Section IV semantics), so the sequential spec is
    /// plain concatenation and the parallel answer depends on the tree
    /// shape — placement must reproduce the splice tree's string
    /// byte-for-byte at every leaf size, word mix (including empty
    /// words) and separator (including empty).
    #[test]
    fn placement_joining_routes_agree(
        seeds in proptest::collection::vec(-1000i32..1000, 1..120),
        sep_ix in 0usize..4,
        leaf in 1usize..32,
    ) {
        let _shared = shared();
        let words: Vec<String> = seeds
            .iter()
            .map(|v| if v % 5 == 0 { String::new() } else { format!("w{v}") })
            .collect();
        let sep = ["", ",", ", ", "##"][sep_ix].to_string();

        // Sequential: one leaf, no combines, no separators — on both routes.
        let concat = words.concat();
        let seq = ExecConfig::seq();
        let placed = stream_support(SliceSpliterator::new(words.clone()), true)
            .try_collect(JoiningCollector::new(sep.clone()), &seq)
            .unwrap();
        let spliced = stream_support(SliceSpliterator::new(words.clone()), true)
            .try_collect(JoiningCollector::new(sep.clone()), &seq.clone().with_placement(false))
            .unwrap();
        prop_assert_eq!(&placed, &concat);
        prop_assert_eq!(&spliced, &concat);

        // Parallel fixed-leaf tree: identical combine points, so the
        // separator-bearing strings must match exactly.
        let par = ExecConfig::par().with_leaf_size(leaf);
        let placed = stream_support(SliceSpliterator::new(words.clone()), true)
            .try_collect(JoiningCollector::new(sep.clone()), &par)
            .unwrap();
        let spliced = stream_support(SliceSpliterator::new(words.clone()), true)
            .try_collect(JoiningCollector::new(sep.clone()), &par.clone().with_placement(false))
            .unwrap();
        prop_assert_eq!(&placed, &spliced);
    }

    /// A panic inside the mapper of a placement-eligible pipeline
    /// surfaces as `ExecError::Panicked` with the payload intact — the
    /// partially-written output buffer is reclaimed, not finished. The
    /// `String` leg runs the same poison through a drop-heavy payload,
    /// so a leak or double-drop of the partial window would trip the
    /// allocator / sanitizer rather than pass silently.
    #[test]
    fn panic_in_mapper_through_placement_run(
        p in powerlist_i64(6),
        ix in 0usize..64,
        leaf in 1usize..16,
    ) {
        let _shared = shared();
        let mut raw = p.into_vec();
        let ix = ix % raw.len();
        raw[ix] = 100_000;
        let poison = raw[ix];
        let msg = format!("mapper poison {poison}");
        let n = raw.len();

        for cfg in [ExecConfig::par().with_leaf_size(leaf), ExecConfig::seq()] {
            // Copy payload into a Vec destination.
            let err = stream_support(SliceSpliterator::new(raw.clone()), true)
                .map(move |x: i64| {
                    assert!(x != poison, "mapper poison {x}");
                    x + 1
                })
                .try_collect(VecCollector, &cfg)
                .expect_err("placement mapper panic must fail the collect");
            prop_assert!(matches!(err, jstreams::ExecError::Panicked(_)));
            prop_assert_eq!(err.panic_message(), Some(msg.as_str()));

            // Drop-heavy payload through the same poisoned run.
            let words: Vec<String> = raw.iter().map(|x| format!("w{x}")).collect();
            let poison_word = format!("w{poison}");
            let err = stream_support(SliceSpliterator::new(words), true)
                .map(move |s: String| {
                    assert!(s != poison_word, "mapper poison {s}");
                    s
                })
                .try_collect(VecCollector, &cfg)
                .expect_err("string placement mapper panic must fail the collect");
            prop_assert!(matches!(err, jstreams::ExecError::Panicked(_)));

            // The same input minus the poison still completes cleanly
            // afterwards (the pool survived the contained panic).
            let ok: Vec<i64> = stream_support(SliceSpliterator::new(raw.clone()), true)
                .map(|x: i64| x - 1)
                .try_collect(VecCollector, &cfg)
                .unwrap();
            prop_assert_eq!(ok.len(), n);
        }
    }
}

/// Route accounting for the tentpole acceptance: an eligible placement
/// run takes the placement route on **every** leaf and never performs a
/// splice combine — all recorded combines carry the placement tag.
#[test]
fn eligible_placement_runs_never_splice_combine() {
    let _exclusive = exclusive();
    let n = 1usize << 10;
    let p = PowerList::from_vec((0..n as i64).collect()).unwrap();
    let words: Vec<String> = (0..200).map(|i| format!("w{i}")).collect();
    // Reference string from the splice route (separators appear at its
    // combine points), taken before recording starts.
    let joined_spec = stream_support(SliceSpliterator::new(words.clone()), true)
        .with_leaf_size(16)
        .with_placement(false)
        .collect(JoiningCollector::new(", "));
    let signal = powerlist::tabulate(256, |i| {
        plalgo::Complex::new((i % 23) as f64 - 11.0, (i % 7) as f64)
    })
    .unwrap();

    let q = p.clone();
    type EligibleRun = (&'static str, Box<dyn FnOnce() + Send>);
    let runs: [EligibleRun; 4] = [
        (
            "to_vec",
            Box::new(move || {
                let v = stream_support(SliceSpliterator::new((0..n as i64).collect()), true)
                    .with_leaf_size(16)
                    .to_vec();
                assert_eq!(v.len(), n);
            }),
        ),
        (
            "powerlist-zip",
            Box::new(move || {
                let out = stream_support(PowerSpliterator::over(q, Decomposition::Zip), true)
                    .with_leaf_size(16)
                    .collect(PowerListCollector::new(Decomposition::Zip));
                assert_eq!(out.len(), n);
            }),
        ),
        (
            "joining",
            Box::new(move || {
                let s = stream_support(SliceSpliterator::new(words), true)
                    .with_leaf_size(16)
                    .collect(JoiningCollector::new(", "));
                assert_eq!(s, joined_spec);
            }),
        ),
        (
            "fft",
            Box::new(move || {
                let out = jstreams::power_stream(signal, Decomposition::Zip)
                    .with_leaf_size(16)
                    .collect(plalgo::FftCollector);
                assert_eq!(out.len(), 256);
            }),
        ),
    ];

    for (name, run) in runs {
        let ((), report) = plobs::recorded(run);
        assert!(
            report.routes.placement.leaves >= 1,
            "{name}: eligible run took no placement leaves:\n{}",
            report.tree_summary()
        );
        assert_eq!(
            report.routes.placement.leaves,
            report.routes.total_leaves(),
            "{name}: a leaf escaped the placement route:\n{}",
            report.tree_summary()
        );
        assert_eq!(
            report.combines,
            report.combines_placement,
            "{name}: an eligible placement run performed a splice combine:\n{}",
            report.tree_summary()
        );
    }
}

/// Ineligible pipelines must leave the splice route untouched: filters
/// (inexact chains), sources with unknown exact size, and
/// limit-over-filter truncations all record **zero** placement leaves
/// and still produce the sequential specification's answer.
#[test]
fn ineligible_pipelines_fall_back_to_splice() {
    let _exclusive = exclusive();
    let n = 600i64;
    let raw: Vec<i64> = (0..n).collect();

    // Filter chain: survivor count unknowable up front.
    let data = raw.clone();
    let (v, report) = plobs::recorded(move || {
        stream_support(SliceSpliterator::new(data), true)
            .with_leaf_size(16)
            .filter(|x| x % 3 == 0)
            .collect(VecCollector)
    });
    assert_eq!(
        v,
        raw.iter()
            .copied()
            .filter(|x| x % 3 == 0)
            .collect::<Vec<_>>()
    );
    assert_eq!(
        report.routes.placement.leaves,
        0,
        "filtered collect must not take the placement route:\n{}",
        report.tree_summary()
    );
    assert_eq!(report.combines_placement, 0);

    // Non-SIZED source: the estimate is an upper bound, not a length.
    let data = raw.clone();
    let (v, report) = plobs::recorded(move || {
        stream_support(UnsizedUpperBound(SliceSpliterator::new(data)), true)
            .with_leaf_size(16)
            .collect(VecCollector)
    });
    assert_eq!(v, raw);
    assert_eq!(
        report.routes.placement.leaves,
        0,
        "non-SIZED collect must not take the placement route:\n{}",
        report.tree_summary()
    );

    // Limit over filter: truncation on top of an inexact chain.
    let data = raw.clone();
    let (v, report) = plobs::recorded(move || {
        stream_support(SliceSpliterator::new(data), true)
            .with_leaf_size(16)
            .filter(|x| x % 2 == 0)
            .limit(40)
            .collect(VecCollector)
    });
    assert_eq!(
        v,
        raw.iter()
            .copied()
            .filter(|x| x % 2 == 0)
            .take(40)
            .collect::<Vec<_>>()
    );
    assert_eq!(
        report.routes.placement.leaves,
        0,
        "limit-over-filter must not take the placement route:\n{}",
        report.tree_summary()
    );
}

/// A singleton never splits: whatever the policy says, there is nothing
/// to halve, so `try_split` answers `None` on every spliterator flavour
/// and the whole run is one sequential leaf.
#[test]
fn singleton_powerlist_never_splits() {
    let _shared = shared();
    let p = PowerList::from_vec(vec![7i64]).unwrap();
    let mut tie = TieSpliterator::over(p.clone());
    assert!(tie.try_split().is_none(), "tie singleton must not split");
    for ds in [Decomposition::Tie, Decomposition::Zip] {
        let mut ps = PowerSpliterator::over(p.clone(), ds);
        assert!(
            ps.try_split().is_none(),
            "power spliterator singleton must not split ({ds:?})"
        );
        assert_eq!(ps.estimate_size(), 1);
    }
}
