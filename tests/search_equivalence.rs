//! Differential route-equivalence for the short-circuiting search
//! terminals.
//!
//! Every quantifier (`any_match`, `all_match`, `none_match`,
//! `find_first`, `find_any`) must answer identically through every
//! route the repo implements:
//!
//! 1. the sequential specification (plain iterator quantifiers);
//! 2. the streams sequential driver (`stream_support(.., false)`);
//! 3. the streams parallel driver (`Found` cancellation +
//!    encounter-order pruning over the fork-join pool);
//! 4. the same parallel driver through a **fused** `map`/`filter`
//!    pipeline — a non-SIZED source whose estimates are upper bounds,
//!    exercising the virtual-encounter-index bookkeeping;
//! 5. the JPLF port (`SearchExecutor` over PowerList views), sequential
//!    and fork-join.
//!
//! Plus the failure contract (a panicking predicate surfaces as
//! `ExecError` through the short-circuiting driver) and the recorded
//! observability contract (a late needle prunes subtrees and counts
//! `Found` cancellations).

use forkjoin::ForkJoinPool;
use jplf::{Decomp, PowerSearchFunction, SearchExecutor};
use jstreams::{power_stream, stream_support, Decomposition, ExecConfig, SliceSpliterator};
use powerlist::PowerList;
use proptest::prelude::*;
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// The recorded test below installs a global plobs sink; everything
/// else takes the lock shared so its events never leak into a report.
static ROUTE_LOCK: RwLock<()> = RwLock::new(());

fn shared() -> RwLockReadGuard<'static, ()> {
    ROUTE_LOCK.read().unwrap_or_else(|e| e.into_inner())
}

fn exclusive() -> RwLockWriteGuard<'static, ()> {
    ROUTE_LOCK.write().unwrap_or_else(|e| e.into_inner())
}

fn pool() -> Arc<ForkJoinPool> {
    Arc::new(ForkJoinPool::new(3))
}

/// Input vectors of power-of-two length (so the same data also feeds
/// the PowerList routes), values in a narrow band so needles both occur
/// and go missing across generated cases.
fn pow2_ints(max_k: u32) -> impl Strategy<Value = Vec<i64>> {
    (0..=max_k).prop_flat_map(|k| proptest::collection::vec(-40i64..40, 1 << k as usize))
}

#[derive(Clone)]
struct Matches {
    needle: i64,
    decomp: Decomp,
}

impl PowerSearchFunction for Matches {
    type Elem = i64;

    fn decomposition(&self) -> Decomp {
        self.decomp
    }

    fn matches(&self, value: &i64) -> bool {
        *value == self.needle
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The three boolean quantifiers: spec = seq stream = par stream =
    /// fused par stream = JPLF (seq + fork-join, tie + zip).
    #[test]
    fn boolean_quantifiers_agree(v in pow2_ints(9), needle in -40i64..40,
                                 leaf in 1usize..64, zip in any::<bool>()) {
        let _shared = shared();
        let pred = move |x: &i64| *x == needle;
        let spec_any = v.iter().any(&pred);
        let spec_all = v.iter().all(&pred);
        let p = pool();

        // Streams: sequential, parallel, and fused-parallel routes.
        let seq = stream_support(SliceSpliterator::new(v.clone()), false);
        prop_assert_eq!(seq.any_match(pred), spec_any);
        let seq = stream_support(SliceSpliterator::new(v.clone()), false);
        prop_assert_eq!(seq.all_match(pred), spec_all);
        let seq = stream_support(SliceSpliterator::new(v.clone()), false);
        prop_assert_eq!(seq.none_match(pred), !spec_any);

        let par = || stream_support(SliceSpliterator::new(v.clone()), true)
            .with_pool(Arc::clone(&p))
            .with_leaf_size(leaf);
        prop_assert_eq!(par().any_match(pred), spec_any);
        prop_assert_eq!(par().all_match(pred), spec_all);
        prop_assert_eq!(par().none_match(pred), !spec_any);

        // Fused non-SIZED pipeline: shift then filter to odd survivors;
        // quantify over the survivors. Estimates become upper bounds.
        let spec_fused_any = v.iter().map(|x| x * 2 + 1).filter(|x| x % 3 != 0).any(|x| x == needle);
        let fused = stream_support(SliceSpliterator::new(v.clone()), true)
            .with_pool(Arc::clone(&p))
            .with_leaf_size(leaf)
            .map(|x: i64| x * 2 + 1)
            .filter(|x: &i64| x % 3 != 0)
            .any_match(move |x: &i64| *x == needle);
        prop_assert_eq!(fused, spec_fused_any);

        // JPLF routes over the same buffer.
        let f = Matches { needle, decomp: if zip { Decomp::Zip } else { Decomp::Tie } };
        let pl = PowerList::from_vec(v.clone()).unwrap();
        let seq_exec = jplf::SequentialExecutor::new();
        let fj = jplf::ForkJoinExecutor::new(2, leaf);
        let view = pl.view();
        prop_assert_eq!(seq_exec.any_match(&f, &view), spec_any);
        prop_assert_eq!(fj.any_match(&f, &view), spec_any);
        prop_assert_eq!(seq_exec.all_match(&f, &view), spec_all);
        prop_assert_eq!(fj.all_match(&f, &view), spec_all);
        prop_assert_eq!(seq_exec.none_match(&f, &view), !spec_any);
        prop_assert_eq!(fj.none_match(&f, &view), !spec_any);
    }

    /// `find_first` is the encounter-order minimum on every route, and
    /// `find_any` returns a matching element exactly when one exists.
    #[test]
    fn find_terminals_agree(v in pow2_ints(9), needle in -40i64..40, leaf in 1usize..64) {
        let _shared = shared();
        let pred = move |x: &i64| *x == needle;
        let spec_first = v.iter().copied().find(|x| pred(x));
        let p = pool();

        let seq_first = stream_support(SliceSpliterator::new(v.clone()), false)
            .filter(pred)
            .find_first();
        prop_assert_eq!(seq_first, spec_first);

        let par_first = stream_support(SliceSpliterator::new(v.clone()), true)
            .with_pool(Arc::clone(&p))
            .with_leaf_size(leaf)
            .filter(pred)
            .find_first();
        prop_assert_eq!(par_first, spec_first);

        // Fused chain with a transform before the filter: first
        // survivor of the *mapped* pipeline, in encounter order.
        let spec_mapped_first = v.iter().map(|x| x * 3).find(|x| *x == needle);
        let fused_first = stream_support(SliceSpliterator::new(v.clone()), true)
            .with_pool(Arc::clone(&p))
            .with_leaf_size(leaf)
            .map(|x: i64| x * 3)
            .filter(move |x: &i64| *x == needle)
            .find_first();
        prop_assert_eq!(fused_first, spec_mapped_first);

        let par_any = stream_support(SliceSpliterator::new(v.clone()), true)
            .with_pool(Arc::clone(&p))
            .with_leaf_size(leaf)
            .filter(pred)
            .find_any();
        match par_any {
            Some(x) => prop_assert!(pred(&x) && spec_first.is_some()),
            None => prop_assert!(spec_first.is_none()),
        }

        // JPLF: find_first is the minimal *physical* index under tie.
        let f = Matches { needle, decomp: Decomp::Tie };
        let pl = PowerList::from_vec(v.clone()).unwrap();
        let view = pl.view();
        prop_assert_eq!(jplf::SequentialExecutor::new().find_first(&f, &view), spec_first);
        prop_assert_eq!(jplf::ForkJoinExecutor::new(2, leaf).find_first(&f, &view), spec_first);
        let jplf_any = jplf::ForkJoinExecutor::new(2, leaf).find_any(&f, &view);
        prop_assert_eq!(jplf_any.is_some(), spec_first.is_some());
        if let Some(x) = jplf_any {
            prop_assert!(pred(&x));
        }
    }

    /// Zip decomposition interleaves halves at every split (the
    /// split-off "prefix" is the even positions, not an encounter-order
    /// prefix), so find_first cannot rely on split structure for
    /// ordering. The ranked keyspace (bare/mapped zip) and the
    /// sequential degradation (filtered zip, where ranks are forfeited)
    /// must both still answer the encounter-order minimum, matching the
    /// streams sequential route exactly.
    #[test]
    fn zip_power_stream_search_agrees(v in pow2_ints(9), needle in -40i64..40,
                                      leaf in 1usize..64) {
        let _shared = shared();
        let pred = move |x: &i64| *x == needle;
        let spec_any = v.iter().any(&pred);
        let spec_first = v.iter().copied().find(|x| pred(x));
        let p = pool();
        let pl = PowerList::from_vec(v.clone()).unwrap();

        let par = || power_stream(pl.clone(), Decomposition::Zip)
            .with_pool(Arc::clone(&p))
            .with_leaf_size(leaf);
        prop_assert_eq!(par().any_match(pred), spec_any);
        prop_assert_eq!(par().filter(pred).find_first(), spec_first);
        let seq_first = power_stream(pl.clone(), Decomposition::Zip)
            .sequential()
            .filter(pred)
            .find_first();
        prop_assert_eq!(seq_first, spec_first);

        // A mapped-then-filtered chain over zip: the filter forfeits
        // the physical ranks, so this is the opaque degradation route.
        let spec_mapped = v.iter().map(|x| x * 3).find(|x| *x == needle);
        let mapped = par()
            .map(|x: i64| x * 3)
            .filter(move |x: &i64| *x == needle)
            .find_first();
        prop_assert_eq!(mapped, spec_mapped);
    }

    /// A panicking predicate surfaces as `ExecError` with its payload
    /// intact, on the sized and the fused (non-SIZED) parallel routes.
    #[test]
    fn predicate_panics_surface_as_errors(k in 6u32..10, at in 0usize..64, leaf in 1usize..64) {
        let _shared = shared();
        let n = 1usize << k;
        let trap = (at * (n / 64)) as i64;
        let v: Vec<i64> = (0..n as i64).collect();
        let p = pool();
        let cfg = ExecConfig::par().with_pool(Arc::clone(&p)).with_leaf_size(leaf);

        let pred = move |x: &i64| {
            if *x == trap {
                panic!("trapped predicate");
            }
            false
        };
        let err = stream_support(SliceSpliterator::new(v.clone()), true)
            .try_any_match(pred, &cfg)
            .unwrap_err();
        prop_assert_eq!(err.panic_message(), Some("trapped predicate"));

        let err = stream_support(SliceSpliterator::new(v.clone()), true)
            .map(|x: i64| x)
            .filter(|_| true)
            .try_any_match(pred, &cfg)
            .unwrap_err();
        prop_assert_eq!(err.panic_message(), Some("trapped predicate"));
    }
}

/// Regression: parallel `find_first` over a filtered zip power stream
/// with single-element leaves returned `Some(2)` on some schedules
/// while the sequential route returned `Some(1)` — the driver's
/// virtual-index pruning assumed prefix-order splits, which zip's
/// parity decomposition violates. Repeated to cover schedules.
#[test]
fn zip_filtered_find_first_is_deterministic() {
    let _shared = shared();
    let pl = PowerList::from_vec((0..16i64).collect()).unwrap();
    let p = pool();
    for _ in 0..50 {
        let par = power_stream(pl.clone(), Decomposition::Zip)
            .with_pool(Arc::clone(&p))
            .with_leaf_size(1)
            .filter(|x: &i64| *x == 1 || *x == 2)
            .find_first();
        assert_eq!(par, Some(1));
    }
}

/// The observability contract on recorded runs: a needle deep in the
/// suffix must trip `Found` on every run, and on at least one schedule
/// leave subtrees behind it to prune (`EarlyExit` + pruned leaves).
/// Whether anything is still pending at trip time is schedule-dependent
/// (a lone hardware thread drains leaves in pure DFS order), hence the
/// bounded retry.
#[test]
fn late_needle_records_found_and_prunes() {
    let _exclusive = exclusive();
    let n = 1usize << 14;
    let v: Vec<i64> = (0..n as i64).collect();
    let needle = (n as i64 / 16) * 13;
    let p = pool();
    let mut pruned = false;
    for _ in 0..20 {
        let (hit, report) = plobs::recorded(|| {
            stream_support(SliceSpliterator::new(v.clone()), true)
                .with_pool(Arc::clone(&p))
                .with_leaf_size(n / 64)
                .any_match(move |x: &i64| *x == needle)
        });
        assert!(hit, "the planted needle must be found");
        assert!(
            report.cancels_found >= 1,
            "a hit must always record a Found cancellation: {report:?}"
        );
        if report.early_exits >= 1 && report.leaves_pruned >= 1 {
            pruned = true;
            break;
        }
    }
    assert!(
        pruned,
        "no schedule in 20 runs pruned a subtree on a late needle"
    );
}
