//! Cross-route agreement: every algorithm must compute the same result
//! through the sequential specification, the JPLF executors
//! (sequential / fork-join / simulated MPI), and the streams adaptation.
//! This is the determinism property the PowerList algebra guarantees and
//! the reason the executor separation is safe.

use jplf::{Decomp, Executor, ForkJoinExecutor, MpiExecutor, SequentialExecutor};
use jstreams::Decomposition;
use powerlist::{tabulate, PowerList};

fn workload(n: usize) -> PowerList<i64> {
    tabulate(n, |i| ((i as i64).wrapping_mul(2654435761) % 997) - 498).unwrap()
}

#[test]
fn map_all_routes() {
    let p = workload(1 << 10);
    let spec = powerlist::ops::map(&p, |x| x * 3 - 1);
    let v = p.clone().view();

    for decomp in [Decomp::Tie, Decomp::Zip] {
        let f = plalgo::MapFunction::new(decomp, |x: &i64| x * 3 - 1);
        assert_eq!(SequentialExecutor::new().execute(&f, &v), spec);
        assert_eq!(ForkJoinExecutor::new(2, 32).execute(&f, &v), spec);
        assert_eq!(MpiExecutor::new(4).execute(&f, &v), spec);
    }
    for d in [Decomposition::Tie, Decomposition::Zip] {
        assert_eq!(plalgo::map_stream(p.clone(), d, |x| x * 3 - 1), spec);
    }
}

#[test]
fn reduce_all_routes() {
    let p = workload(1 << 10);
    let spec = powerlist::ops::reduce(&p, |a, b| a + b);
    let v = p.clone().view();

    let f = plalgo::ReduceFunction::new(Decomp::Tie, |a: &i64, b: &i64| a + b);
    assert_eq!(SequentialExecutor::new().execute(&f, &v), spec);
    assert_eq!(ForkJoinExecutor::new(3, 16).execute(&f, &v), spec);
    assert_eq!(MpiExecutor::new(8).execute(&f, &v), spec);
    for d in [Decomposition::Tie, Decomposition::Zip] {
        assert_eq!(plalgo::reduce_stream(p.clone(), d, 0, |a, b| a + b), spec);
    }
}

#[test]
fn polynomial_all_routes() {
    let coeffs = tabulate(1 << 11, |i| ((i % 13) as f64 - 6.0) / 7.0).unwrap();
    let x = -0.9999;
    let expected = plalgo::horner(coeffs.as_slice(), x);
    let close = |v: f64| (v - expected).abs() < 1e-9 * (1.0 + expected.abs());

    assert!(close(plalgo::eval_seq_stream(coeffs.clone(), x)));
    assert!(close(plalgo::eval_par_stream(coeffs.clone(), x)));
    let v = coeffs.view();
    let vp = plalgo::VpFunction::new(x);
    assert!(close(SequentialExecutor::new().execute(&vp, &v)));
    assert!(close(ForkJoinExecutor::new(2, 64).execute(&vp, &v)));
    assert!(close(MpiExecutor::new(4).execute(&vp, &v)));
}

#[test]
fn fft_all_routes() {
    let signal = tabulate(1 << 8, |i| {
        plalgo::Complex::new((i % 11) as f64 - 5.0, (i % 4) as f64)
    })
    .unwrap();
    let spec = plalgo::fft_seq(&signal);
    let close = |out: &PowerList<plalgo::Complex>| {
        out.iter()
            .zip(spec.iter())
            .all(|(a, b)| a.approx_eq(*b, 1e-7))
    };

    assert!(close(&plalgo::fft_stream(signal.clone())));
    let v = signal.view();
    assert!(close(
        &SequentialExecutor::new().execute(&plalgo::FftFunction, &v)
    ));
    assert!(close(
        &ForkJoinExecutor::new(2, 16).execute(&plalgo::FftFunction, &v)
    ));
    assert!(close(
        &MpiExecutor::new(4).execute(&plalgo::FftFunction, &v)
    ));
}

#[test]
fn haar_all_executors() {
    let p = tabulate(1 << 8, |i| (i as f64).cos()).unwrap();
    let f = plalgo::TieDescentFunction::new(|a: &f64, b: &f64| a + b, |a: &f64, b: &f64| a - b);
    let v = p.clone().view();
    let spec = SequentialExecutor::new().execute(&f, &v);
    assert_eq!(ForkJoinExecutor::new(3, 8).execute(&f, &v), spec);
    assert_eq!(MpiExecutor::new(4).execute(&f, &v), spec);
    assert_eq!(plalgo::haar_like(&p), spec);
}

#[test]
fn scan_routes_agree() {
    let p = workload(1 << 9);
    let spec = plalgo::scan_spec(p.as_slice(), |a, b| a + b);
    let seq = plalgo::scan_seq(&p, 0, |a, b| a + b);
    assert_eq!(seq.as_slice(), &spec[..]);
    let pool = forkjoin::ForkJoinPool::new(3);
    let par = plalgo::scan_par(&pool, &p, 0, |a: &i64, b: &i64| a + b, 37).unwrap();
    assert_eq!(par.as_slice(), &spec[..]);
}

#[test]
fn sorting_routes_agree() {
    let p = workload(1 << 9);
    let mut expected = p.clone().into_vec();
    expected.sort();
    assert_eq!(plalgo::batcher_sort(&p).as_slice(), &expected[..]);
    assert_eq!(plalgo::bitonic_sort(&p).as_slice(), &expected[..]);
    let pool = forkjoin::ForkJoinPool::new(2);
    assert_eq!(
        plalgo::batcher_sort_par(&pool, &p, 64).as_slice(),
        &expected[..]
    );
}

#[test]
fn executor_decomposition_matrix() {
    // Same function under tie and zip decomposition, each on each
    // executor: 2 × 3 = 6 routes, one answer.
    let p = workload(1 << 8);
    let spec = powerlist::ops::reduce(&p, |a, b| a.wrapping_add(*b));
    let v = p.view();
    for decomp in [Decomp::Tie, Decomp::Zip] {
        let f = plalgo::ReduceFunction::new(decomp, |a: &i64, b: &i64| a.wrapping_add(*b));
        let results = [
            SequentialExecutor::new().execute(&f, &v),
            ForkJoinExecutor::new(2, 16).execute(&f, &v),
            MpiExecutor::new(4).execute(&f, &v),
        ];
        for r in results {
            assert_eq!(r, spec, "{decomp:?}");
        }
    }
}
