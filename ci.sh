#!/usr/bin/env bash
# CI gate: tier-1 verify (ROADMAP.md) + formatting + lints.
# Run from the repository root. Fails fast on the first broken step.

set -euo pipefail
cd "$(dirname "$0")"

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "CI green."
