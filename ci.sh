#!/usr/bin/env bash
# CI gate: tier-1 verify (ROADMAP.md) + formatting + lints.
# Run from the repository root. Fails fast on the first broken step.

set -euo pipefail
cd "$(dirname "$0")"

# Benchmarks compare compute kernels (scan vs fold) whose relative cost
# depends heavily on the vector ISA: baseline x86-64 codegen vectorizes
# i64 additions (SSE2 paddq) but not i64 equality (SSE4.1 pcmpeqq), which
# skews every scan-vs-reduce ratio the paper reproduction reports. Build
# the bench/smoke invocations for the host CPU so both sides get the same
# vector treatment — scoped here (not a committed [build] section) so
# plain `cargo build` artifacts stay portable.
BENCH_RUSTFLAGS="-C target-cpu=native"

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> cargo test -q --workspace (all crates incl. plobs, doc-tests)"
cargo test -q --workspace

echo "==> smoke: polynomial example emits a valid RunReport + takes the fused route"
# The example validates its own RunReport JSON and panics on a
# malformed document; it also runs a mapped pipeline under a recorded
# sink and asserts every leaf took the FusedBorrow route (zero cloning
# drains). Grep pins both success markers so a silent skip also fails.
POLY_LOG=target/ci-polynomial.log
cargo run --release --example polynomial 16 | tee /dev/stderr >"$POLY_LOG"
grep -q "run report JSON: valid" "$POLY_LOG"
grep -q "mapped pipeline route: fused_borrow" "$POLY_LOG"

echo "==> smoke: split-policy A/B bench emits validated rows"
# The bin strict-validates every row against the JSON validator and
# exits non-zero on a malformed document; grep pins all three rows so
# a silently skipped workload also fails.
SPLIT_LOG=target/ci-splitpolicy.log
RUSTFLAGS="$BENCH_RUSTFLAGS" \
cargo run --release -p plbench --bin split_policy -- --runs 1 --exp 10 \
    --out-dir target/ci-splitpolicy | tee /dev/stderr >"$SPLIT_LOG"
grep -c "wrote target/ci-splitpolicy/BENCH_splitpolicy_" "$SPLIT_LOG" | grep -qx 3

echo "==> smoke: try_collect happy path measured against legacy collect"
# The reduce row A/Bs the fault-tolerant session path against the
# legacy infallible collect on the same pool/policy; pin that both the
# printed line and the persisted JSON field exist so the comparison
# cannot silently disappear. (The <2% overhead acceptance is judged on
# the paper-scale release run, not this 2^10 smoke input.)
grep -q "try_collect overhead" "$SPLIT_LOG"
grep -q '"try_overhead_ratio"' target/ci-splitpolicy/BENCH_splitpolicy_reduce.json

echo "==> smoke: fused A/B bench emits validated rows with the route contract"
# The bin asserts the route split itself (fused arm: zero cloning
# leaves; cloning arm: zero fused leaves) and that filtered fused
# leaves report survivor item counts; grep pins both rows so a
# silently skipped workload also fails. (The ≥3x speedup acceptance is
# judged on the paper-scale 2^18 release run, not this smoke input.)
FUSED_LOG=target/ci-fused.log
RUSTFLAGS="$BENCH_RUSTFLAGS" \
cargo run --release -p plbench --bin fused -- --runs 1 --exp 12 \
    --out-dir target/ci-fused | tee /dev/stderr >"$FUSED_LOG"
grep -c "wrote target/ci-fused/BENCH_fused_" "$FUSED_LOG" | grep -qx 2

echo "==> smoke: autotune bench proves run-2 cache hits + persistence reload"
# The bin runs each workload's tuned arm twice in one process against a
# shared PlanCache and asserts in-process that run 2 was served by the
# installed plan (tune.hits >= 1, tune.calibrations == 0), then
# round-trips the cache through save/load and asserts the reloaded copy
# also hits. Every row is strict-validated before writing (the bin
# exits non-zero otherwise); the greps pin all markers per workload so
# a silently skipped arm also fails.
AUTOTUNE_LOG=target/ci-autotune.log
RUSTFLAGS="$BENCH_RUSTFLAGS" \
cargo run --release -p plbench --bin autotune -- --runs 1 --exp 12 \
    --out-dir target/ci-autotune | tee /dev/stderr >"$AUTOTUNE_LOG"
grep -c "run-2 cache hit OK" "$AUTOTUNE_LOG" | grep -qx 2
grep -c "persisted cache reload hit OK" "$AUTOTUNE_LOG" | grep -qx 2
grep -c "wrote target/ci-autotune/BENCH_autotune_" "$AUTOTUNE_LOG" | grep -qx 2

echo "==> smoke: short-circuiting search bench gates the front-needle speedup"
# The bin plants needles across sweep positions, asserts the plobs
# pruning contract in-process (late needles record Found cancellations
# + pruned subtrees, absent needles record neither), and with
# --min-front-speedup gates that a front needle beats the full-drain
# baseline — the short-circuit must stay visible even at smoke sizes.
# The greps pin both artifact rows so a silently skipped sweep fails.
SEARCH_LOG=target/ci-search.log
RUSTFLAGS="$BENCH_RUSTFLAGS" \
cargo run --release -p plbench --bin search -- --runs 3 --exp 12 \
    --min-front-speedup 3 --out-dir target/ci-search | tee /dev/stderr >"$SEARCH_LOG"
grep -q "wrote target/ci-search/BENCH_search_any.json" "$SEARCH_LOG"
grep -q "wrote target/ci-search/BENCH_search_findfirst.json" "$SEARCH_LOG"

echo "==> smoke: placement A/B bench gates the destination-passing speedup"
# The bin asserts the route contract in-process (placement arm: >= 1
# placed leaf and zero splice combines; splice arm: zero placed leaves)
# and both arms must agree on the collected value; --min-speedup gates
# that root-allocated output windows beat splice-combining even at
# smoke sizes. (The >= 3x acceptance is judged on the paper-scale 2^18
# release run, not this 2^16 smoke input.)
PLACEMENT_LOG=target/ci-placement.log
RUSTFLAGS="$BENCH_RUSTFLAGS" \
cargo run --release -p plbench --bin placement -- --runs 5 --exp 16 \
    --min-speedup 2 --out-dir target/ci-placement | tee /dev/stderr >"$PLACEMENT_LOG"
grep -q "wrote target/ci-placement/BENCH_placement_tovec.json" "$PLACEMENT_LOG"
grep -q "wrote target/ci-placement/BENCH_placement_powerlist.json" "$PLACEMENT_LOG"
grep -q "placement gate passed" "$PLACEMENT_LOG"

echo "==> plcheck: deterministic concurrency checker gate"
# Fixed regression models + the pinned regression-seed set run inside
# the normal suite; then a short randomized-schedule smoke walks fresh
# interleavings each CI pass. The base seed is printed (and echoed by
# the test itself), and any failing schedule prints its own per-schedule
# seed, so every failure here is replayable with
# plcheck::Explorer::replay_seed(<seed>). Stays well under a minute.
PLCHECK_SMOKE_SEED="${PLCHECK_SMOKE_SEED:-$(date +%s)}"
export PLCHECK_SMOKE_SEED
echo "    PLCHECK_SMOKE_SEED=$PLCHECK_SMOKE_SEED"
cargo test -q -p plcheck

echo "==> cargo doc --no-deps with warnings denied"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "CI green."
