#!/usr/bin/env bash
# CI gate: tier-1 verify (ROADMAP.md) + formatting + lints.
# Run from the repository root. Fails fast on the first broken step.

set -euo pipefail
cd "$(dirname "$0")"

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> cargo test -q --workspace (all crates incl. plobs, doc-tests)"
cargo test -q --workspace

echo "==> smoke: polynomial example emits a valid RunReport"
# The example validates its own RunReport JSON and panics on a
# malformed document; grep pins the success marker so a silent skip
# also fails.
cargo run --release --example polynomial 16 | grep -q "run report JSON: valid"

echo "==> smoke: split-policy A/B bench emits validated rows"
# The bin strict-validates every row against the JSON validator and
# exits non-zero on a malformed document; grep pins all three rows so
# a silently skipped workload also fails.
cargo run --release -p plbench --bin split_policy -- --runs 1 --exp 10 \
    --out-dir target/ci-splitpolicy | tee /dev/stderr \
    | grep -c "wrote target/ci-splitpolicy/BENCH_splitpolicy_" \
    | grep -qx 3

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "CI green."
